/**
 * @file
 * PTM invariant auditor implementation.
 *
 * All checks run between simulation events (the auditor is invoked
 * from commit/abort hooks and scheduled audit events), so they observe
 * quiescent structure states: a cleanup walk's already-processed nodes
 * are gone from both lists, its unprocessed nodes are on both.
 */

#include "ptm/audit.hh"

#include <unordered_set>

#include "ptm/vts.hh"
#include "sim/logging.hh"
#include "tx/tx_manager.hh"

namespace ptm
{

namespace
{

/** Stop recording (but keep counting) past this many violations: a
 *  corrupted structure re-detected by every later audit pass must not
 *  grow the report without bound. */
constexpr std::size_t maxRecorded = 256;

using ull = unsigned long long;

} // namespace

void
PtmAuditor::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("audit");
    g.addCounter("checks_run", &checksRun,
                 "full invariant-audit passes executed");
    g.addCounter("violations", &violationsFound,
                 "invariant violations detected");
}

void
PtmAuditor::report(const char *check, const char *where, Tick now,
                   std::string detail)
{
    ++violationsFound;
    if (violations_.size() >= maxRecorded)
        return;
    warn("audit[%s] at tick %llu (%s): %s%s%s", check, (ull)now, where,
         detail.c_str(), repro_.empty() ? "" : " | repro: ",
         repro_.c_str());
    AuditViolation v;
    v.check = check;
    v.where = where;
    v.tick = now;
    v.detail = std::move(detail);
    violations_.push_back(std::move(v));
    if (onViolation)
        onViolation(violations_.back());
}

std::size_t
PtmAuditor::checkAll(const char *where, Tick now)
{
    if (!vts_ || !txmgr_)
        return 0;
    ++checksRun;
    std::size_t before = violationsFound.value();

    // Cap every intrusive-list walk: a corrupted link must produce a
    // violation, not an endless audit.
    const std::size_t walk_cap = vts_->tav_arena_.slabNodes() + 1;
    const unsigned page_bits = vts_->gran_.bitsPerPage();

    std::unordered_set<const TavNode *> horiz;
    std::unordered_set<std::uint64_t> shadows;
    std::uint64_t shadow_count = 0;
    std::uint64_t live_dirty_pages = 0;

    vts_->spt_.forEach([&](PageNum page, SptEntry &e) {
        if (e.home != page)
            report("spt-home", where, now,
                   strprintf("entry of page %llu records home %llu",
                             (ull)page, (ull)e.home));
        if (e.hasShadow()) {
            ++shadow_count;
            if (e.shadow == e.home)
                report("shadow-self", where, now,
                       strprintf("page %llu shadows itself",
                                 (ull)page));
            if (!shadows.insert(std::uint64_t(e.shadow)).second)
                report("shadow-dup", where, now,
                       strprintf("shadow frame %llu serves two pages",
                                 (ull)e.shadow));
        }
        if (!vts_->select_ && e.selection.any())
            report("selection-copy", where, now,
                   strprintf("Copy-PTM page %llu has selection bits",
                             (ull)page));
        if (vts_->select_ && e.selection.any() && !e.hasShadow())
            report("selection-shadow", where, now,
                   strprintf("page %llu selects shadow units with no "
                             "shadow page",
                             (ull)page));

        // Walk the horizontal list once: per-node checks, then the
        // summary recomputation (§4.2.2: summaries are the OR of the
        // page's TAV vectors).
        BitVec wsum = vts_->gran_.makeVec();
        BitVec rsum = vts_->gran_.makeVec();
        bool dirty_running = false; // a Running writer's spill
        bool dirty_pending = false; // ... or one mid-cleanup
        std::unordered_set<std::uint64_t> txs_on_page;
        std::size_t steps = 0;
        for (TavNode *t = e.tavHead; t; t = t->nextOnPage) {
            if (++steps > walk_cap) {
                report("vertical-agree", where, now,
                       strprintf("horizontal list of page %llu cycles",
                                 (ull)page));
                break;
            }
            horiz.insert(t);
            if (t->home != page)
                report("node-home", where, now,
                       strprintf("node of tx %llu on page %llu "
                                 "records home %llu",
                                 (ull)t->tx, (ull)page, (ull)t->home));
            TxState s = txmgr_->stateOf(t->tx);
            if (s != TxState::Running && s != TxState::Committing &&
                s != TxState::Aborting)
                report("node-state", where, now,
                       strprintf("node of tx %llu (state %d) survived "
                                 "cleanup on page %llu",
                                 (ull)t->tx, int(s), (ull)page));
            if (!txs_on_page.insert(std::uint64_t(t->tx)).second)
                report("node-dup", where, now,
                       strprintf("tx %llu holds two nodes on page "
                                 "%llu",
                                 (ull)t->tx, (ull)page));
            if (t->read.size() != page_bits ||
                t->write.size() != page_bits) {
                report("node-vec", where, now,
                       strprintf("node of tx %llu on page %llu has "
                                 "%u/%u-bit vectors (want %u)",
                                 (ull)t->tx, (ull)page,
                                 t->read.size(), t->write.size(),
                                 page_bits));
                continue; // ORing mis-sized vectors would panic
            }
            wsum |= t->write;
            rsum |= t->read;
            if (t->write.any()) {
                dirty_pending = true;
                if (s == TxState::Running)
                    dirty_running = true;
            }
        }
        if (!(wsum == e.writeSummary) || !(rsum == e.readSummary))
            report("summary-agree", where, now,
                   strprintf("summaries of page %llu disagree with "
                             "the OR of its TAV vectors (w %u/%u set, "
                             "r %u/%u set)",
                             (ull)page, wsum.count(),
                             e.writeSummary.count(), rsum.count(),
                             e.readSummary.count()));
        // The flag refreshes lazily (on spills and cleanup steps), so
        // it may stay raised while a writer's cleanup walk is still in
        // flight — but a Running writer's spill must raise it, and it
        // must drop once no writer remains at all.
        if (dirty_running && !e.liveDirty)
            report("live-dirty", where, now,
                   strprintf("page %llu has a running writer's spill "
                             "but its liveDirty flag is clear",
                             (ull)page));
        if (e.liveDirty && !dirty_pending)
            report("live-dirty", where, now,
                   strprintf("page %llu liveDirty flag is set with no "
                             "writer present",
                             (ull)page));
        if (e.liveDirty)
            ++live_dirty_pages;
    });

    if (shadow_count != vts_->shadow_pages_)
        report("shadow-count", where, now,
               strprintf("%llu shadow pages allocated per counter, "
                         "%llu found in the SPT",
                         (ull)vts_->shadow_pages_, (ull)shadow_count));
    if (live_dirty_pages != vts_->live_dirty_count_)
        report("live-dirty", where, now,
               strprintf("live-dirty gauge is %llu, %llu pages are "
                         "flagged",
                         (ull)vts_->live_dirty_count_,
                         (ull)live_dirty_pages));

    // Swap Index Table entries describe fully quiesced pages: no TAV
    // state, no shadow frame, home recorded as invalid (§3.5.1).
    vts_->sit_.forEach([&](std::uint64_t slot, SptEntry &e) {
        if (e.tavHead || e.hasShadow() || e.home != invalidPage)
            report("sit-clean", where, now,
                   strprintf("SIT slot %llu not quiesced (tav %d, "
                             "shadow %d, home %llu)",
                             (ull)slot, int(e.tavHead != nullptr),
                             int(e.hasShadow()), (ull)e.home));
    });
    vts_->swapped_shadow_data_.forEach(
        [&](std::uint64_t slot, std::vector<std::uint8_t> &) {
            if (!vts_->sit_.find(slot))
                report("swap-data", where, now,
                       strprintf("stashed shadow bytes of slot %llu "
                                 "have no SIT entry",
                                 (ull)slot));
        });

    // Vertical reachability: every node is reachable from exactly one
    // transaction — via its T-State list head (not yet cleaning) or
    // the unprocessed tail of its cleanup job — and vice versa.
    std::unordered_set<const TavNode *> vert;
    vts_->tx_head_.forEach([&](TxId tx, TavNode *&head) {
        std::size_t steps = 0;
        for (TavNode *t = head; t; t = t->nextOfTx) {
            if (++steps > walk_cap) {
                report("vertical-agree", where, now,
                       strprintf("vertical list of tx %llu cycles",
                                 (ull)tx));
                break;
            }
            if (!vert.insert(t).second)
                report("vertical-agree", where, now,
                       strprintf("node reachable from two vertical "
                                 "lists (tx %llu)",
                                 (ull)tx));
        }
    });
    vts_->jobs_.forEach([&](TxId tx, Vts::CleanupJob &j) {
        for (std::size_t i = j.next; i < j.nodes.size(); ++i)
            if (!vert.insert(j.nodes[i]).second)
                report("vertical-agree", where, now,
                       strprintf("cleanup node of tx %llu reachable "
                                 "twice",
                                 (ull)tx));
    });
    std::size_t orphans = 0, dangling = 0;
    for (const TavNode *t : horiz)
        if (!vert.count(t))
            ++orphans;
    for (const TavNode *t : vert)
        if (!horiz.count(t))
            ++dangling;
    if (orphans || dangling)
        report("vertical-agree", where, now,
               strprintf("%llu horizontal nodes unreachable "
                         "vertically, %llu vertical nodes off their "
                         "page lists",
                         (ull)orphans, (ull)dangling));

    if (vts_->tav_arena_.liveNodes() != horiz.size())
        report("arena-live", where, now,
               strprintf("arena reports %llu live nodes, %llu are on "
                         "page lists",
                         (ull)vts_->tav_arena_.liveNodes(),
                         (ull)horiz.size()));

    // T-State cross-checks.
    std::uint64_t running = 0, overflowed_live = 0;
    for (const auto &[id, tx] : txmgr_->txTable()) {
        if (tx.state == TxState::Running)
            ++running;
        if (tx.overflowed && (tx.state == TxState::Running ||
                              tx.state == TxState::Committing ||
                              tx.state == TxState::Aborting))
            ++overflowed_live;
    }
    if (running != txmgr_->liveCount())
        report("live-count", where, now,
               strprintf("manager counts %u live transactions, table "
                         "holds %llu Running",
                         txmgr_->liveCount(), (ull)running));
    if (overflowed_live != vts_->overflowed_live_)
        report("overflow-live", where, now,
               strprintf("VTS counts %u overflowed live transactions, "
                         "table holds %llu",
                         vts_->overflowed_live_, (ull)overflowed_live));

    std::uint64_t cause_sum = txmgr_->abortsConflict.value() +
                              txmgr_->abortsNonTx.value() +
                              txmgr_->abortsMultiWriter.value() +
                              txmgr_->abortsExplicit.value();
    if (cause_sum != txmgr_->aborts.value())
        report("abort-sum", where, now,
               strprintf("per-cause abort counters sum to %llu, "
                         "aborts is %llu",
                         (ull)cause_sum, (ull)txmgr_->aborts.value()));

    return std::size_t(violationsFound.value() - before);
}

// ---------------------------------------------------------------------
// Test-only corruption helpers.

void
AuditTestAccess::corruptHome(Vts &v, PageNum page)
{
    v.spt_.at(page).home = page + 1;
}

void
AuditTestAccess::aliasShadow(Vts &v, PageNum page)
{
    v.spt_.at(page).shadow = page;
}

void
AuditTestAccess::leakShadowCount(Vts &v)
{
    ++v.shadow_pages_;
}

void
AuditTestAccess::dupShadow(Vts &v, PageNum a, PageNum b)
{
    v.spt_.at(b).shadow = v.spt_.at(a).shadow;
}

void
AuditTestAccess::corruptSummary(Vts &v, PageNum page)
{
    SptEntry &e = v.spt_.at(page);
    if (e.writeSummary.size() == 0)
        e.writeSummary = v.gran_.makeVec();
    e.writeSummary.toggle(0);
}

void
AuditTestAccess::corruptSelection(Vts &v, PageNum page)
{
    SptEntry &e = v.spt_.at(page);
    if (e.selection.size() == 0)
        e.selection = v.gran_.makeVec();
    e.shadow = invalidPage;
    e.selection.set(0);
}

void
AuditTestAccess::corruptNodeHome(Vts &v, PageNum page)
{
    TavNode *t = v.spt_.at(page).tavHead;
    panic_if(!t, "corruptNodeHome: page has no TAV nodes");
    t->home = page + 1;
}

void
AuditTestAccess::corruptNodeTx(Vts &v, PageNum page, TxId bogus)
{
    TavNode *t = v.spt_.at(page).tavHead;
    panic_if(!t, "corruptNodeTx: page has no TAV nodes");
    t->tx = bogus;
}

void
AuditTestAccess::dupNode(Vts &v, PageNum page)
{
    SptEntry &e = v.spt_.at(page);
    panic_if(!e.tavHead, "dupNode: page has no TAV nodes");
    TavNode *n = v.tav_arena_.alloc();
    n->tx = e.tavHead->tx;
    n->home = page;
    n->read = v.gran_.makeVec();
    n->write = v.gran_.makeVec();
    n->nextOnPage = e.tavHead;
    e.tavHead = n;
}

void
AuditTestAccess::shrinkNodeVec(Vts &v, PageNum page)
{
    TavNode *t = v.spt_.at(page).tavHead;
    panic_if(!t, "shrinkNodeVec: page has no TAV nodes");
    t->read = BitVec();
    t->write = BitVec();
}

void
AuditTestAccess::breakVerticalLink(Vts &v, TxId tx)
{
    TavNode **head = v.tx_head_.find(tx);
    panic_if(!head || !*head, "breakVerticalLink: no vertical list");
    *head = (*head)->nextOfTx;
}

void
AuditTestAccess::leakArenaNode(Vts &v)
{
    TavNode *n = v.tav_arena_.alloc();
    n->tx = invalidTxId;
    n->home = invalidPage;
}

void
AuditTestAccess::bumpLiveDirty(Vts &v)
{
    ++v.live_dirty_count_;
}

void
AuditTestAccess::bumpOverflowCount(Vts &v)
{
    ++v.overflowed_live_;
}

void
AuditTestAccess::corruptSit(Vts &v, std::uint64_t slot)
{
    v.sit_[slot].home = 42;
}

void
AuditTestAccess::orphanSwapData(Vts &v, std::uint64_t slot)
{
    v.swapped_shadow_data_[slot] =
        std::vector<std::uint8_t>(pageBytes, 0);
}

void
AuditTestAccess::bumpLiveCount(TxManager &m)
{
    ++m.live_count_;
}

} // namespace ptm
