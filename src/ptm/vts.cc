/**
 * @file
 * Virtual Transaction Supervisor implementation.
 */

#include "ptm/vts.hh"

#include <algorithm>

#include "ptm/heatmap.hh"
#include "sim/flightrec.hh"
#include "sim/logging.hh"

namespace ptm
{

void
VtsMetaCache::unlink(std::uint32_t i)
{
    Node &n = nodes_[i];
    if (n.prev != nil)
        nodes_[n.prev].next = n.next;
    else
        head_ = n.next;
    if (n.next != nil)
        nodes_[n.next].prev = n.prev;
    else
        tail_ = n.prev;
    n.prev = n.next = nil;
}

void
VtsMetaCache::pushFront(std::uint32_t i)
{
    Node &n = nodes_[i];
    n.prev = nil;
    n.next = head_;
    if (head_ != nil)
        nodes_[head_].prev = i;
    head_ = i;
    if (tail_ == nil)
        tail_ = i;
}

bool
VtsMetaCache::access(std::uint64_t key, bool mark_dirty,
                     bool &evicted_dirty)
{
    evicted_dirty = false;
    if (std::uint32_t *slot = index_.find(key)) {
        std::uint32_t i = *slot;
        nodes_[i].dirty |= mark_dirty;
        if (head_ != i) {
            unlink(i);
            pushFront(i);
        }
        ++hits;
        return true;
    }
    ++misses;
    if (index_.size() >= capacity_) {
        std::uint32_t victim = tail_;
        if (nodes_[victim].dirty) {
            evicted_dirty = true;
            ++dirtyEvictions;
        }
        unlink(victim);
        index_.erase(nodes_[victim].key);
        free_.push_back(victim);
    }
    std::uint32_t i;
    if (!free_.empty()) {
        i = free_.back();
        free_.pop_back();
    } else {
        i = std::uint32_t(nodes_.size());
        nodes_.emplace_back();
    }
    nodes_[i].key = key;
    nodes_[i].dirty = mark_dirty;
    pushFront(i);
    index_[key] = i;
    return false;
}

void
VtsMetaCache::remove(std::uint64_t key)
{
    std::uint32_t *slot = index_.find(key);
    if (!slot)
        return;
    std::uint32_t i = *slot;
    unlink(i);
    index_.erase(key);
    free_.push_back(i);
}

void
VtsMetaCache::setCapacity(unsigned entries)
{
    capacity_ = entries ? entries : 1;
    while (index_.size() > capacity_) {
        std::uint32_t victim = tail_;
        if (nodes_[victim].dirty)
            ++dirtyEvictions;
        unlink(victim);
        index_.erase(nodes_[victim].key);
        free_.push_back(victim);
    }
}

Vts::Vts(const SystemParams &params, EventQueue &eq, PhysMem &phys,
         TxManager &txmgr, FrameAllocator &frames, DramModel &dram)
    : sptCache(params.sptCacheEntries, params.memBanks),
      tavCache(params.tavCacheEntries, params.memBanks),
      params_(params), eq_(eq), phys_(phys), txmgr_(txmgr),
      frames_(frames), dram_(dram),
      gran_(params.granularity == Granularity::WordCacheMem),
      select_(params.tmKind == TmKind::SelectPtm),
      supervisor_free_(params.memBanks > 1
                           ? std::max(1u, params.numCores)
                           : 1,
                       0)
{
    panic_if(params.tmKind != TmKind::SelectPtm &&
                 params.tmKind != TmKind::CopyPtm,
             "Vts built for a non-PTM system kind");
}

void
Vts::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("vts");
    g.addCounter("shadow_allocs", &shadowAllocs,
                 "shadow pages allocated");
    g.addCounter("shadow_frees", &shadowFrees, "shadow pages freed");
    g.addCounter("tav_nodes_created", &tavNodesCreated,
                 "TAV nodes created for overflowed blocks");
    g.addCounter("commit_walk_nodes", &commitWalkNodes,
                 "TAV nodes visited by commit cleanup walks");
    g.addCounter("abort_walk_nodes", &abortWalkNodes,
                 "TAV nodes visited by abort cleanup walks");
    g.addCounter("abort_restore_units", &abortRestoreUnits,
                 "blocks/words restored from backups on abort");
    g.addCounter("copy_backups", &copyBackups,
                 "Copy-PTM backup copies taken on first overflow");
    g.addCounter("stalls_signalled", &stallsSignalled,
                 "accesses told to stall behind cleanup");
    g.addCounter("lazy_migrations", &lazyMigrations,
                 "committed blocks lazily migrated to the home page");
    g.addCounter("spt_cache_hits", &sptCache.hits,
                 "SPT cache hits in the memory controller");
    g.addCounter("spt_cache_misses", &sptCache.misses,
                 "SPT cache misses (DRAM walk)");
    g.addCounter("spt_cache_dirty_evictions", &sptCache.dirtyEvictions,
                 "dirty SPT cache entries written back on eviction");
    g.addCounter("tav_cache_hits", &tavCache.hits,
                 "TAV cache hits in the memory controller");
    g.addCounter("tav_cache_misses", &tavCache.misses,
                 "TAV cache misses (DRAM walk)");
    g.addCounter("tav_cache_dirty_evictions", &tavCache.dirtyEvictions,
                 "dirty TAV cache entries written back on eviction");
    g.addScalar("live_shadow_pages",
                [this] { return double(liveShadowPages()); },
                "shadow pages currently allocated");
    g.addTimeWeighted("avg_live_dirty_pages", &live_dirty_,
                      "time-weighted live dirty pages (Table 1)");
    g.addDistribution("commit_cleanup_latency", &commitCleanupLatency,
                      "ticks from logical commit to cleanup done");
    g.addDistribution("abort_cleanup_latency", &abortCleanupLatency,
                      "ticks from logical abort to cleanup done");
    g.addDistribution("spt_walk_len", &sptWalkLen,
                      "DRAM accesses per SPT miss walk");
    g.addDistribution("tav_walk_len", &tavWalkLen,
                      "DRAM accesses per TAV miss walk");
    g.addDistribution("overflow_pages_per_tx", &overflowPagesPerTx,
                      "distinct overflowed pages per transaction");
}

// TAV nodes are owned by the arena; its chunks free everything.
Vts::~Vts() = default;

SptEntry &
Vts::entryFor(PageNum home)
{
    if (SptEntry *p = spt_.find(home))
        return *p;
    SptEntry &e = spt_[home];
    e.home = home;
    e.selection = gran_.makeVec();
    e.writeSummary = gran_.makeVec();
    e.readSummary = gran_.makeVec();
    return e;
}

SptEntry *
Vts::findEntry(PageNum home)
{
    return spt_.find(home);
}

const SptEntry *
Vts::findEntry(PageNum home) const
{
    return spt_.find(home);
}

const SptEntry *
Vts::sptEntry(PageNum home) const
{
    return findEntry(home);
}

Tick
Vts::sptLookupCost(PageNum home, TxId tx)
{
    bool evicted_dirty = false;
    bool hit = sptCache.access(home, home, false, evicted_dirty);
    tracer_->record(hit ? TraceEventType::SptHit
                        : TraceEventType::SptMiss,
                    traceNoId, traceNoId, tx, invalidTxId, home);
    if (evicted_dirty)
        tracer_->record(TraceEventType::SptEvict, traceNoId, traceNoId,
                        invalidTxId, invalidTxId, home);
    if (!hit && heat_)
        heat_->recordSptMiss(home);
    if (!hit && fr_ && tx != invalidTxId)
        fr_->onSptMiss(tx);
    Tick now = eq_.curTick();
    Tick done = now;
    if (!hit) {
        // Walk the in-memory SPT entry and rebuild the summary vectors
        // from the TAV list (section 4.2.2); the TAV nodes met during
        // the walk enter the TAV cache.
        done = dram_.access(now);
        unsigned walked = 0;
        if (SptEntry *e = findEntry(home)) {
            for (TavNode *t = e->tavHead; t; t = t->nextOnPage) {
                ++walked;
                done = dram_.access(done);
                bool evd = false;
                tavCache.access(home, tavKey(home, t->tx), false, evd);
                if (evd)
                    done = dram_.access(done);
            }
        }
        sptWalkLen.sample(walked);
    }
    if (evicted_dirty)
        done = dram_.access(done);
    Tick cost = hit ? params_.vtsCacheLatency
                    : std::max(done - now, params_.vtsCacheLatency);
    prof_->charge(ProfCharge::MetaLookup, cost);
    return cost;
}

Tick
Vts::tavLookupCost(PageNum home, TxId tx, bool mark_dirty)
{
    bool evicted_dirty = false;
    bool hit = tavCache.access(home, tavKey(home, tx), mark_dirty,
                               evicted_dirty);
    tracer_->record(hit ? TraceEventType::TavHit
                        : TraceEventType::TavMiss,
                    traceNoId, traceNoId, tx, invalidTxId, home);
    if (evicted_dirty)
        tracer_->record(TraceEventType::TavEvict, traceNoId, traceNoId,
                        tx, invalidTxId, home);
    if (!hit && heat_)
        heat_->recordTavMiss(home);
    if (!hit && fr_ && tx != invalidTxId)
        fr_->onTavMiss(tx);
    Tick now = eq_.curTick();
    Tick done = now;
    if (!hit)
        done = dram_.access(now);
    if (evicted_dirty)
        done = dram_.access(done);
    prof_->charge(ProfCharge::TavLookup, done - now);
    return done - now;
}

CheckResult
Vts::checkAccess(const BlockAccess &acc)
{
    CheckResult r;
    PageNum page = pageOf(acc.blockAddr);
    r.extraLatency += sptLookupCost(page, acc.tx);

    SptEntry *e = findEntry(page);
    if (!e)
        return r;

    // Summary-vector filter: no overflowed writer and (for writes) no
    // overflowed reader means no conflict (section 4.4.2). A block
    // with overflowed writes in *any* word must still be scanned: a
    // pending commit/abort of it stalls the whole-block fill.
    bool wsum = gran_.anySet(e->writeSummary, acc.blockAddr,
                             acc.wordMask);
    bool rsum = gran_.anySet(e->readSummary, acc.blockAddr,
                             acc.wordMask);
    bool wsum_block =
        gran_.anySet(e->writeSummary, acc.blockAddr, 0xffff);
    if (!wsum && !(acc.isWrite && rsum) && !wsum_block)
        return r;

    for (TavNode *t = e->tavHead; t; t = t->nextOnPage) {
        if (t->tx == acc.tx)
            continue;
        switch (txmgr_.stateOf(t->tx)) {
          case TxState::Running: {
              bool hit_write = gran_.anySet(t->write, acc.blockAddr,
                                            acc.wordMask);
              bool hit_read =
                  acc.isWrite && gran_.anySet(t->read, acc.blockAddr,
                                              acc.wordMask);
              if (hit_write || hit_read) {
                  r.extraLatency += tavLookupCost(page, t->tx, false);
                  r.conflicts.push_back(t->tx);
              }
              break;
          }
          case TxState::Committing:
          case TxState::Aborting:
            // Lazy cleanup has not reached this page yet. The check is
            // at *block* granularity regardless of the conflict
            // granularity: a fill composes the whole block, so every
            // pending word of it must be published first (4.5).
            if (gran_.anySet(t->write, acc.blockAddr, 0xffff)) {
                r.extraLatency += tavLookupCost(page, t->tx, false);
                r.stall = true;
                ++stallsSignalled;
            }
            break;
          default:
            panic("TAV node of dead transaction %llu survived cleanup",
                  (unsigned long long)t->tx);
        }
    }
    return r;
}

bool
Vts::effSelection(const SptEntry &e, unsigned i) const
{
    bool sel = e.selection.test(i);
    // A Committing transaction's lazy walk will toggle the selection
    // bit of every unit it wrote; until the walk reaches this page,
    // writebacks and speculative deposits must already target the
    // post-toggle locations, or a newer committed value written back
    // in the window would be stranded in the stale location.
    for (const TavNode *t = e.tavHead; t; t = t->nextOnPage) {
        if (t->write.test(i) &&
            txmgr_.stateOf(t->tx) == TxState::Committing)
            sel = !sel;
    }
    return sel;
}

Addr
Vts::committedUnitAddr(const SptEntry &e, unsigned i) const
{
    PageNum p = (select_ && e.hasShadow() && effSelection(e, i))
                    ? e.shadow
                    : e.home;
    return gran_.unitAddr(p, i);
}

Addr
Vts::specUnitAddr(const SptEntry &e, unsigned i) const
{
    panic_if(!e.hasShadow(), "speculative location without shadow page");
    PageNum p = (select_ && effSelection(e, i)) ? e.home : e.shadow;
    if (!select_)
        p = e.home; // Copy-PTM: speculative data always in the home page
    return gran_.unitAddr(p, i);
}

Tick
Vts::fillBlock(Addr block_addr, TxId requester, std::uint8_t *dst,
               std::uint16_t &spec_words, std::vector<TxMark> &foreign)
{
    foreign.clear();

    PageNum page = pageOf(block_addr);
    SptEntry *e = findEntry(page);
    Tick extra = 0;
    spec_words = 0;

    if (!e) {
        phys_.readBlock(block_addr, dst);
        return 0;
    }
    // If the overflow flag is down the bus path skipped checkAccess,
    // so charge the SPT-cache consultation here (the selection vector
    // is still needed to locate committed data).
    if (!anyOverflow())
        extra += sptLookupCost(page, requester);

    TavNode *mine0 =
        requester != invalidTxId ? e->findTav(requester) : nullptr;
    if (!select_ || !e->hasShadow()) {
        // Copy-PTM fetches from the home page; for the writer this is
        // the speculative version, for everyone else the committed one
        // (conflicting cases were resolved before the fill).
        phys_.readBlock(block_addr, dst);
        if (mine0) {
            for (unsigned w = 0; w < wordsPerBlock; ++w) {
                unsigned bit = gran_.wordBit(block_addr +
                                             Addr(w) * wordBytes);
                if (mine0->write.test(bit))
                    spec_words |= std::uint16_t(1u << w);
            }
        }
        return extra;
    }

    // Select-PTM: per unit, XOR of write-summary and selection decides
    // the page; equivalently, the requester reads its own speculative
    // units and committed units otherwise (section 4.4.1).
    TavNode *mine = mine0;
    unsigned block_off = unsigned(pageOffset(block_addr));
    for (unsigned w = 0; w < wordsPerBlock; ++w) {
        Addr word_addr = block_addr + Addr(w) * wordBytes;
        unsigned bit = gran_.wordBit(word_addr);
        Addr loc;
        TxId writer = invalidTxId;
        if (gran_.perWord() && (!mine || !mine->write.test(bit))) {
            // Another live transaction's overflowed speculative word?
            // The paper's XOR rule fetches the speculative location
            // whenever the write-summary bit is set; the line then
            // carries the writer's mark so conflicts keep firing on
            // the cached copy (word-granularity sharing).
            if (e->writeSummary.test(bit)) {
                for (TavNode *t = e->tavHead; t; t = t->nextOnPage) {
                    if (t->tx != requester && t->write.test(bit) &&
                        txmgr_.isLive(t->tx)) {
                        writer = t->tx;
                        break;
                    }
                }
            }
        }
        if (mine && mine->write.test(bit)) {
            loc = specUnitAddr(*e, bit);
            spec_words |= std::uint16_t(1u << w);
        } else if (writer != invalidTxId) {
            loc = specUnitAddr(*e, bit);
            bool found = false;
            for (auto &fm : foreign) {
                if (fm.tx == writer) {
                    fm.writeWords |= std::uint16_t(1u << w);
                    found = true;
                }
            }
            if (!found)
                foreign.push_back(
                    TxMark{writer, 0, std::uint16_t(1u << w)});
        } else {
            loc = committedUnitAddr(*e, bit);
        }
        // Unit addresses are page-relative at the same offset; pick
        // the word within the chosen page.
        Addr src = pageBase(pageOf(loc)) + block_off +
                   Addr(w) * wordBytes;
        std::uint32_t v = phys_.readWord32(src);
        if (tracer_->watchingWord(word_addr))
            tracer_->record(TraceEventType::Watchpoint, traceNoId,
                            traceNoId, requester, invalidTxId,
                            word_addr,
                            std::uint64_t(WatchKind::Fill), double(v));
        std::memcpy(dst + w * wordBytes, &v, wordBytes);
    }
    return extra;
}

bool
Vts::mayGrantExclusive(Addr block_addr, TxId requester)
{
    SptEntry *e = findEntry(pageOf(block_addr));
    if (!e)
        return true;
    std::uint16_t full = 0xffff;
    if (!gran_.anySet(e->readSummary, block_addr, full) &&
        !gran_.anySet(e->writeSummary, block_addr, full))
        return true;
    for (TavNode *t = e->tavHead; t; t = t->nextOnPage) {
        if (t->tx == requester)
            continue;
        if (gran_.anySet(t->read, block_addr, full) ||
            gran_.anySet(t->write, block_addr, full))
            return false;
    }
    return true;
}

void
Vts::noteOverflow(TxId tx)
{
    Transaction *t = txmgr_.get(tx);
    panic_if(!t, "overflow for unknown transaction");
    if (!t->overflowed) {
        t->overflowed = true;
        ++overflowed_live_;
    }
}

void
Vts::ensureShadow(SptEntry &e, TxId tx)
{
    if (e.hasShadow())
        return;
    e.shadow = frames_.alloc();
    ++shadow_pages_;
    ++shadowAllocs;
    if (heat_)
        heat_->recordShadowAlloc(e.home);
    if (fr_ && tx != invalidTxId)
        fr_->onShadowAlloc(tx);
    tracer_->record(TraceEventType::ShadowAlloc, traceNoId, traceNoId,
                    tx, invalidTxId, e.home, e.shadow);
}

void
Vts::freeShadow(SptEntry &e)
{
    if (!e.hasShadow())
        return;
    tracer_->record(TraceEventType::ShadowFree, traceNoId, traceNoId,
                    invalidTxId, invalidTxId, e.home, e.shadow);
    phys_.releaseFrame(e.shadow);
    frames_.free(e.shadow);
    e.shadow = invalidPage;
    --shadow_pages_;
    ++shadowFrees;
}

void
Vts::maybeFreeShadow(SptEntry &e)
{
    if (!e.hasShadow() || e.tavHead)
        return;
    if (!select_) {
        // Copy-PTM: the shadow only holds backups for live
        // transactions; free it as soon as nobody uses the page.
        freeShadow(e);
        return;
    }
    if (e.selection.none()) {
        freeShadow(e);
        return;
    }
    // Otherwise the shadow still holds committed units; MergeOnSwap
    // frees it when the OS pages the home out, LazyMigrate when
    // writebacks have drained the selection vector.
}

void
Vts::refreshPage(SptEntry &e)
{
    e.writeSummary.reset();
    e.readSummary.reset();
    bool live_dirty = false;
    for (TavNode *t = e.tavHead; t; t = t->nextOnPage) {
        e.writeSummary |= t->write;
        e.readSummary |= t->read;
        if (t->write.any() && txmgr_.isLive(t->tx))
            live_dirty = true;
    }
    if (live_dirty != e.liveDirty) {
        e.liveDirty = live_dirty;
        live_dirty_count_ += live_dirty ? 1 : -1;
        live_dirty_.set(eq_.curTick(), double(live_dirty_count_));
    }
}

Tick
Vts::evictTxBlock(Addr block_addr, TxId tx, bool dirty_spec,
                  const std::uint8_t *data, std::uint16_t read_words,
                  std::uint16_t write_words)
{
    PageNum page = pageOf(block_addr);
    SptEntry &e = entryFor(page);
    Tick now = eq_.curTick();
    Tick lat = sptLookupCost(page, tx);
    lat += tavLookupCost(page, tx, true);

    TavNode *node = e.findTav(tx);
    if (!node) {
        node = tav_arena_.alloc();
        node->tx = tx;
        node->home = page;
        // Recycled nodes keep cleared vectors of the right width; only
        // freshly carved nodes need the one-time allocation.
        if (node->read.size() != gran_.bitsPerPage()) {
            node->read = gran_.makeVec();
            node->write = gran_.makeVec();
        }
        node->nextOnPage = e.tavHead;
        e.tavHead = node;
        TavNode *&headp = tx_head_[tx];
        node->nextOfTx = headp;
        headp = node;
        ++tavNodesCreated;
        // Creating the in-memory node is a posted memory write: it
        // consumes bandwidth but does not hold the evicting access.
        dram_.write(now + lat);
    }

    noteOverflow(tx);

    if (dirty_spec) {
        ensureShadow(e, tx);

        if (!select_) {
            // Copy-PTM: back up the committed unit on its first dirty
            // overflow, then store the speculative data in the home
            // page (section 3.2.1).
            gran_.forBits(block_addr, write_words, [&](unsigned i) {
                if (!e.writeSummary.test(i) && !node->write.test(i)) {
                    Addr home_u = gran_.unitAddr(e.home, i);
                    Addr shadow_u = gran_.unitAddr(e.shadow, i);
                    if (gran_.perWord())
                        phys_.copyWord32(shadow_u, home_u);
                    else
                        phys_.copyBlock(shadow_u, home_u);
                    ++copyBackups;
                    // Posted backup copy: read + write bandwidth.
                    dram_.access(now + lat);
                    dram_.write(now + lat);
                }
            });
        }

        // Record the write bits *before* storing data so Select-PTM's
        // speculative location sees the final vectors.
        gran_.setBits(node->write, block_addr, write_words);

        // Store the speculatively written words to the speculative
        // location (Select: selection-determined page; Copy: home).
        // With block-granularity vectors the whole block must land in
        // the speculative page (its selection bit covers all 16 words,
        // so unwritten words must carry their committed values too).
        std::uint16_t store_words =
            (select_ && !gran_.perWord()) ? std::uint16_t(0xffff)
                                          : write_words;
        unsigned block_off = unsigned(pageOffset(block_addr));
        for (unsigned w = 0; w < wordsPerBlock; ++w) {
            if (!(store_words & (1u << w)))
                continue;
            Addr word_addr = block_addr + Addr(w) * wordBytes;
            unsigned bit = gran_.wordBit(word_addr);
            Addr loc = specUnitAddr(e, bit);
            Addr dst = pageBase(pageOf(loc)) + block_off +
                       Addr(w) * wordBytes;
            std::uint32_t v;
            std::memcpy(&v, data + w * wordBytes, wordBytes);
            if (tracer_->watchingWord(word_addr))
                tracer_->record(TraceEventType::Watchpoint, traceNoId,
                                traceNoId, tx, invalidTxId, word_addr,
                                std::uint64_t(WatchKind::SpecDeposit),
                                double(v));
            phys_.writeWord32(dst, v);
        }
        // Posted block-sized memory write for the speculative data.
        dram_.write(now + lat);
    }

    gran_.setBits(node->read, block_addr, read_words);
    refreshPage(e);
    return lat;
}

Tick
Vts::writebackBlock(Addr block_addr, const std::uint8_t *data,
                    std::uint16_t word_mask)
{
    PageNum page = pageOf(block_addr);
    SptEntry *e = findEntry(page);
    Tick now = eq_.curTick();
    Tick lat = 0;

    if (!e || !select_ || !e->hasShadow()) {
        // Committed data lives in the home page.
        unsigned block_off = unsigned(pageOffset(block_addr));
        for (unsigned w = 0; w < wordsPerBlock; ++w) {
            if (!(word_mask & (1u << w)))
                continue;
            std::uint32_t v;
            std::memcpy(&v, data + w * wordBytes, wordBytes);
            phys_.writeWord32(pageBase(page) + block_off +
                                  Addr(w) * wordBytes,
                              v);
        }
        dram_.write(now); // posted write
        return 0;
    }

    lat += sptLookupCost(page);
    bool lazy = params_.shadowFree == ShadowFreePolicy::LazyMigrate;
    bool toggled = false;
    unsigned block_off = unsigned(pageOffset(block_addr));
    for (unsigned w = 0; w < wordsPerBlock; ++w) {
        if (!(word_mask & (1u << w)))
            continue;
        Addr word_addr = block_addr + Addr(w) * wordBytes;
        unsigned bit = gran_.wordBit(word_addr);
        Addr loc;
        if (lazy && effSelection(*e, bit) &&
            !e->writeSummary.test(bit)) {
            // Lazy shadow freeing: force the committed writeback to
            // the home page and toggle the selection bit (3.5.2).
            loc = gran_.unitAddr(e->home, bit);
            e->selection.clear(bit);
            toggled = true;
            ++lazyMigrations;
        } else {
            loc = committedUnitAddr(*e, bit);
        }
        std::uint32_t v;
        std::memcpy(&v, data + w * wordBytes, wordBytes);
        if (tracer_->watchingWord(word_addr))
            tracer_->record(TraceEventType::Watchpoint, traceNoId,
                            traceNoId, invalidTxId, invalidTxId,
                            word_addr, std::uint64_t(WatchKind::Cwb),
                            double(v));
        phys_.writeWord32(pageBase(pageOf(loc)) + block_off +
                              Addr(w) * wordBytes,
                          v);
    }
    if (toggled) {
        tracer_->record(TraceEventType::SelFlip, traceNoId, traceNoId,
                        invalidTxId, invalidTxId, page);
        bool evd = false;
        sptCache.access(page, page, true, evd);
        maybeFreeShadow(*e);
    }
    dram_.write(now + lat); // posted write
    return lat;
}

std::uint32_t
Vts::readCommittedWord32(Addr word_addr)
{
    PageNum page = pageOf(word_addr);
    const SptEntry *e = findEntry(page);
    if (!e || !select_ || !e->hasShadow())
        return phys_.readWord32(word_addr);
    unsigned bit = gran_.wordBit(word_addr);
    Addr loc = committedUnitAddr(*e, bit);
    return phys_.readWord32(pageBase(pageOf(loc)) +
                            pageOffset(word_addr));
}

void
Vts::commitTx(TxId tx)
{
    scheduleCleanup(tx, true);
}

void
Vts::abortTx(TxId tx)
{
    scheduleCleanup(tx, false);
}

void
Vts::scheduleCleanup(TxId tx, bool is_commit)
{
    // Chaos hook: hold the walk's start back by a polled delay. While
    // the start is pending the TAV lists are untouched, so conflict
    // checks keep stalling behind the Committing/Aborting nodes — the
    // delay stretches exactly the window where stale metadata could be
    // observed.
    Tick delay = chaos_->cleanupDelay();
    if (delay) {
        pending_delayed_[tx] = is_commit;
        eq_.scheduleIn(delay, EventPriority::Supervisor, [this, tx] {
            bool *is_c = pending_delayed_.find(tx);
            if (!is_c)
                return; // already forced by finishCleanupNow()
            bool c = *is_c;
            pending_delayed_.erase(tx);
            startCleanup(tx, c);
        });
        return;
    }
    startCleanup(tx, is_commit);
}

void
Vts::finishCleanupNow(TxId tx)
{
    if (bool *is_c = pending_delayed_.find(tx)) {
        bool c = *is_c;
        pending_delayed_.erase(tx);
        startCleanup(tx, c); // may finish synchronously (no overflow)
    }
    CleanupJob *j = jobs_.find(tx);
    if (!j)
        return;
    while (j->next < j->nodes.size()) {
        processNode(*j, j->nodes[j->next]);
        ++j->next;
    }
    Distribution &lat =
        j->isCommit ? commitCleanupLatency : abortCleanupLatency;
    lat.sample(double(eq_.curTick() - j->startTick));
    tracer_->record(TraceEventType::WalkEnd, traceNoId, traceNoId, tx,
                    invalidTxId, j->isCommit ? 1 : 0, j->nodes.size());
    jobs_.erase(tx);
    Transaction *txn = txmgr_.get(tx);
    if (txn && txn->overflowed) {
        panic_if(overflowed_live_ == 0, "overflow count underflow");
        --overflowed_live_;
    }
    txmgr_.cleanupDone(tx);
}

void
Vts::drainThreadCleanups(ThreadId thread)
{
    // Collect ids first: finishCleanupNow mutates jobs_ and
    // pending_delayed_, and cleanupDone can cascade. Sorting keeps the
    // drain order independent of hash-table iteration order.
    std::vector<TxId> ids;
    for (const auto &[id, tx] : txmgr_.txTable())
        if (tx.thread == thread && tx.state == TxState::Aborting)
            ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (TxId id : ids)
        finishCleanupNow(id);
}

void
Vts::drainAllCleanups()
{
    std::vector<TxId> ids;
    for (const auto &[id, tx] : txmgr_.txTable())
        if (tx.state == TxState::Committing ||
            tx.state == TxState::Aborting)
            ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (TxId id : ids)
        finishCleanupNow(id);
}

unsigned
Vts::cleanupShardOf(TxId tx) const
{
    if (supervisor_free_.size() <= 1)
        return 0;
    const Transaction *t = txmgr_.get(tx);
    return t ? unsigned(t->thread) % unsigned(supervisor_free_.size())
             : 0;
}

void
Vts::startCleanup(TxId tx, bool is_commit)
{

    TavNode **headp = tx_head_.find(tx);
    TavNode *head = headp ? *headp : nullptr;
    if (headp)
        tx_head_.erase(tx);

    if (!head) {
        // Never overflowed: commit/abort is handled entirely in-cache.
        overflowPagesPerTx.sample(0);
        txmgr_.cleanupDone(tx);
        return;
    }

    CleanupJob job;
    job.isCommit = is_commit;
    job.startTick = eq_.curTick();
    job.shard = cleanupShardOf(tx);
    for (TavNode *t = head; t; t = t->nextOfTx)
        job.nodes.push_back(t);
    overflowPagesPerTx.sample(double(job.nodes.size()));
    tavWalkLen.sample(double(job.nodes.size()));
    tracer_->record(TraceEventType::WalkStart, traceNoId, traceNoId,
                    tx, invalidTxId, is_commit ? 1 : 0,
                    job.nodes.size());
    jobs_[tx] = std::move(job);
    cleanupStep(tx);
}

void
Vts::cleanupStep(TxId tx)
{
    CleanupJob &job = jobs_.at(tx);
    TavNode *node = job.nodes[job.next];

    Tick t = std::max(eq_.curTick(), supervisor_free_[job.shard]);
    Tick done = dram_.access(t); // read and free the node
    if (job.isCommit && select_ && node->write.any()) {
        done = dram_.write(done); // selection-vector update
    }
    if (!job.isCommit && !select_) {
        // Copy-PTM abort: restore each overwritten unit from the
        // shadow page (one read + one write per unit).
        unsigned units = node->write.count();
        for (unsigned i = 0; i < units; ++i) {
            done = dram_.access(done);
            done = dram_.write(done);
        }
    }
    supervisor_free_[job.shard] = done;
    prof_->charge(job.isCommit ? ProfCharge::CommitCleanup
                               : ProfCharge::AbortCleanup,
                  done - t);

    eq_.schedule(done, EventPriority::Supervisor, [this, tx]() {
        CleanupJob *jp = jobs_.find(tx);
        if (!jp)
            return; // walk already forced by finishCleanupNow()
        CleanupJob &j = *jp;
        processNode(j, j.nodes[j.next]);
        ++j.next;
        if (j.next == j.nodes.size()) {
            Distribution &lat = j.isCommit ? commitCleanupLatency
                                           : abortCleanupLatency;
            lat.sample(double(eq_.curTick() - j.startTick));
            tracer_->record(TraceEventType::WalkEnd, traceNoId,
                            traceNoId, tx, invalidTxId,
                            j.isCommit ? 1 : 0, j.nodes.size());
            jobs_.erase(tx);
            Transaction *txn = txmgr_.get(tx);
            if (txn && txn->overflowed) {
                panic_if(overflowed_live_ == 0,
                         "overflow count underflow");
                --overflowed_live_;
            }
            txmgr_.cleanupDone(tx);
        } else {
            cleanupStep(tx);
        }
    });
}

void
Vts::processNode(CleanupJob &job, TavNode *node)
{
    SptEntry &e = spt_.at(node->home);

    if (job.isCommit) {
        ++commitWalkNodes;
        if (select_ && node->write.any()) {
            // Toggle the written units: the speculative location
            // becomes the committed one.
            e.selection ^= node->write;
            tracer_->record(TraceEventType::SelFlip, traceNoId,
                            traceNoId, node->tx, invalidTxId, e.home,
                            node->write.count());
            Addr wa = tracer_->watchAddr();
            if (wa != invalidAddr && pageOf(wa) == e.home &&
                node->write.test(gran_.wordBit(wa)))
                tracer_->record(
                    TraceEventType::Watchpoint, traceNoId, traceNoId,
                    node->tx, invalidTxId, wa,
                    std::uint64_t(WatchKind::Toggle),
                    double(e.selection.test(gran_.wordBit(wa))));
            // No cached copy can hold a stale committed value here:
            // any copy either predates the writer's exclusive grab
            // (invalidated then), carries the writer's mark with the
            // speculative value (foreign-spec fills and cache-to-cache
            // sharing), or was filled after this node's cleanup (the
            // block-granularity stall) — so flipping the selection
            // bits publishes without touching the caches.
        }
    } else {
        ++abortWalkNodes;
        if (!select_) {
            node->write.forEachSet([&](unsigned i) {
                Addr home_u = gran_.unitAddr(e.home, i);
                Addr shadow_u = gran_.unitAddr(e.shadow, i);
                if (gran_.perWord())
                    phys_.copyWord32(home_u, shadow_u);
                else
                    phys_.copyBlock(home_u, shadow_u);
                ++abortRestoreUnits;
            });
        }
        // Select-PTM abort: nothing to do — the selection bits still
        // point at the committed units.
    }

    // Unlink from the horizontal list and drop the cached copy.
    TavNode **link = &e.tavHead;
    while (*link && *link != node)
        link = &(*link)->nextOnPage;
    panic_if(!*link, "TAV node missing from its page list");
    *link = node->nextOnPage;
    tavCache.remove(node->home, tavKey(node->home, node->tx));

    refreshPage(e);
    maybeFreeShadow(e);
    bool evd = false;
    sptCache.access(node->home, node->home, true, evd);
    tav_arena_.free(node);
}

bool
Vts::swappable(PageNum home) const
{
    const SptEntry *e = findEntry(home);
    return !e || e->tavHead == nullptr;
}

void
Vts::pageSwapOut(PageNum home, std::uint64_t slot)
{
    SptEntry *p = spt_.find(home);
    if (!p)
        return;
    SptEntry e = std::move(*p);
    spt_.erase(home);
    sptCache.remove(home, home);
    panic_if(e.tavHead,
             "OS swapped out a page with live TAV state");

    if (e.hasShadow()) {
        if (select_ &&
            params_.shadowFree == ShadowFreePolicy::MergeOnSwap) {
            // Merge the committed shadow units back into the home
            // frame before the OS copies it to the backing store; the
            // SIT entry then records no shadow (section 3.5.2).
            e.selection.forEachSet([&](unsigned i) {
                if (gran_.perWord())
                    phys_.copyWord32(gran_.unitAddr(home, i),
                                     gran_.unitAddr(e.shadow, i));
                else
                    phys_.copyBlock(gran_.unitAddr(home, i),
                                    gran_.unitAddr(e.shadow, i));
            });
            e.selection.reset();
            freeShadow(e);
        } else {
            // Both pages swap out together: stash the shadow bytes.
            std::vector<std::uint8_t> bytes(pageBytes);
            for (unsigned b = 0; b < blocksPerPage; ++b)
                phys_.readBlock(pageBase(e.shadow) + b * blockBytes,
                                bytes.data() + b * blockBytes);
            swapped_shadow_data_[slot] = std::move(bytes);
            freeShadow(e);
        }
    }
    e.home = invalidPage;
    sit_[slot] = std::move(e);
}

void
Vts::pageSwapIn(std::uint64_t slot, PageNum new_home)
{
    SptEntry *p = sit_.find(slot);
    if (!p)
        return;
    SptEntry e = std::move(*p);
    sit_.erase(slot);
    e.home = new_home;

    if (std::vector<std::uint8_t> *sh =
            swapped_shadow_data_.find(slot)) {
        e.shadow = frames_.alloc();
        ++shadow_pages_;
        ++shadowAllocs;
        for (unsigned b = 0; b < blocksPerPage; ++b)
            phys_.writeBlock(pageBase(e.shadow) + b * blockBytes,
                             sh->data() + b * blockBytes);
        swapped_shadow_data_.erase(slot);
    }
    spt_[new_home] = std::move(e);
}

} // namespace ptm
