/**
 * @file
 * Helper mapping cache-level accesses onto the per-page bit vectors of
 * the PTM structures.
 *
 * In the default mode every bit of a TAV / selection / summary vector
 * corresponds to one 64-byte block (64 bits per page). In the
 * wd:cache+mem mode of Figure 5 the vectors hold one bit per 4-byte
 * word (1024 bits per page); both modes share the same code because the
 * vector width is the only difference.
 */

#ifndef PTM_PTM_GRANULARITY_HH
#define PTM_PTM_GRANULARITY_HH

#include <cstdint>

#include "sim/bitvec.hh"
#include "sim/types.hh"

namespace ptm
{

/** Vector-granularity configuration of the PTM structures. */
class PageGran
{
  public:
    /** @param per_word true for wd:cache+mem vectors. */
    explicit PageGran(bool per_word) : per_word_(per_word) {}

    bool perWord() const { return per_word_; }

    /** Bits in a per-page vector. */
    unsigned
    bitsPerPage() const
    {
        return per_word_ ? wordsPerPage : blocksPerPage;
    }

    /** A fresh all-clear page vector. */
    BitVec makeVec() const { return BitVec(bitsPerPage()); }

    /**
     * Invoke @p fn(bit_index) for every vector bit touched by an
     * access of @p word_mask (bit per 4-byte word) within the block at
     * @p block_addr.
     */
    template <typename F>
    void
    forBits(Addr block_addr, std::uint16_t word_mask, F &&fn) const
    {
        unsigned blk = blockInPage(block_addr);
        if (!per_word_) {
            fn(blk);
            return;
        }
        for (unsigned w = 0; w < wordsPerBlock; ++w)
            if (word_mask & (1u << w))
                fn(blk * wordsPerBlock + w);
    }

    /** True if @p vec has any bit set for the given access. */
    bool
    anySet(const BitVec &vec, Addr block_addr,
           std::uint16_t word_mask) const
    {
        bool hit = false;
        forBits(block_addr, word_mask, [&](unsigned i) {
            if (vec.test(i))
                hit = true;
        });
        return hit;
    }

    /** Set every bit of the access in @p vec. */
    void
    setBits(BitVec &vec, Addr block_addr, std::uint16_t word_mask) const
    {
        forBits(block_addr, word_mask,
                [&](unsigned i) { vec.set(i); });
    }

    /** Bit index of the whole block (block mode) / first word. */
    unsigned
    blockBit(Addr block_addr) const
    {
        unsigned blk = blockInPage(block_addr);
        return per_word_ ? blk * wordsPerBlock : blk;
    }

    /** Vector bit index covering the 4-byte word at @p word_addr. */
    unsigned
    wordBit(Addr word_addr) const
    {
        return per_word_ ? wordInPage(word_addr)
                         : blockInPage(word_addr);
    }

    /**
     * Byte address (within page @p page) covered by vector bit @p i,
     * and the byte size of a unit.
     */
    Addr
    unitAddr(PageNum page, unsigned i) const
    {
        Addr off = per_word_ ? Addr(i) * wordBytes
                             : Addr(i) * blockBytes;
        return pageBase(page) + off;
    }

    /** Bytes covered by one vector bit. */
    Addr
    unitBytes() const
    {
        return per_word_ ? wordBytes : blockBytes;
    }

  private:
    bool per_word_;
};

} // namespace ptm

#endif // PTM_PTM_GRANULARITY_HH
