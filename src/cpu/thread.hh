/**
 * @file
 * Simulated software threads and their programs.
 *
 * A thread program is a sequence of steps. Each step is either a
 * transaction (ordered or unordered; its body coroutine is re-created
 * from the factory when the transaction aborts — the register
 * checkpoint restore), a plain non-transactional stretch, or a
 * barrier. Lock-based synchronization is expressed inside plain steps
 * with CAS spinlocks (see locks/spinlock.hh).
 */

#ifndef PTM_CPU_THREAD_HH
#define PTM_CPU_THREAD_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cpu/coro.hh"
#include "sim/types.hh"

namespace ptm
{

class Core;

/** A transactional step. */
struct TxStep
{
    CoroFactory body;
    bool ordered = false;
    /** Ordered scope handle (from TxManager::createOrderedScope). */
    std::uint32_t scope = 0;
    /** Program-defined commit rank within the scope. */
    std::uint64_t rank = 0;
};

/** A non-transactional step. */
struct PlainStep
{
    CoroFactory body;
};

/** Wait at OS barrier @c id until all participants arrive. */
struct BarrierStep
{
    unsigned id = 0;
};

using Step = std::variant<TxStep, PlainStep, BarrierStep>;

/** Scheduling state of a thread. */
enum class ThreadState
{
    Ready,       //!< runnable, waiting for a core
    Running,     //!< on a core
    WaitMem,     //!< a memory access is in flight
    WaitOrdered, //!< at tx_end, waiting for the commit token
    WaitAbort,   //!< aborted, waiting for cleanup before restart
    WaitBarrier, //!< parked at a barrier
    Done,        //!< program finished
};

/** One simulated thread. */
class ThreadCtx
{
  public:
    ThreadCtx(ThreadId id, ProcId proc, std::vector<Step> steps,
              std::string name = {})
        : id(id), proc(proc), name(std::move(name)),
          steps_(std::move(steps))
    {}

    const ThreadId id;
    const ProcId proc;
    const std::string name;

    ThreadState state = ThreadState::Ready;
    /** Core currently running (or parking) the thread. */
    Core *core = nullptr;

    /** Current transaction (invalidTxId outside transactions). */
    TxId curTx = invalidTxId;
    /** Live coroutine of the current step. */
    TxCoro coro;
    bool coroLive = false;

    /** Logical abort received; stop issuing and restart. */
    bool abortPending = false;
    /** Abort cleanup finished; restart may proceed. */
    bool abortCleanupDone = false;
    /** A load/CAS result awaits delivery to the coroutine. */
    bool hasPendingResume = false;
    std::uint64_t resumeValue = 0;
    /** tx_end issued; waiting to (re)try the commit. */
    bool commitPending = false;
    /**
     * Execution-attempt epoch, bumped on every abort restart. Core
     * continuation events capture it so that callbacks belonging to an
     * aborted attempt become no-ops instead of resuming the new one.
     */
    std::uint64_t epoch = 0;

    std::size_t stepIdx = 0;

    /** @name Per-thread statistics */
    /// @{
    std::uint64_t memOps = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t restarts = 0;
    /// @}

    bool
    finished() const
    {
        return stepIdx >= steps_.size();
    }

    const Step &
    currentStep() const
    {
        return steps_[stepIdx];
    }

    std::size_t numSteps() const { return steps_.size(); }

  private:
    std::vector<Step> steps_;
};

} // namespace ptm

#endif // PTM_CPU_THREAD_HH
