/**
 * @file
 * Core implementation.
 */

#include "cpu/core.hh"

#include <algorithm>

#include "persist/wal.hh"
#include "sim/flightrec.hh"
#include "sim/logging.hh"
#include "vm/os_kernel.hh"

namespace ptm
{

Core::Core(CoreId id, const SystemParams &params, EventQueue &eq,
           MemSystem &mem, TxManager &txmgr, OsKernel &os)
    : id_(id), params_(params), eq_(eq), mem_(mem), txmgr_(txmgr),
      os_(os), backoff_rng_(params.seed, 0xb0ff + id),
      site_step_(eq.siteId("core.step")),
      site_compute_(eq.siteId("core.compute")),
      site_xlat_(eq.siteId("core.xlat")),
      site_mem_(eq.siteId("core.mem"))
{}

void
Core::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("core" + std::to_string(id_));
    g.addCounter("mem_ops", &memOps,
                 "loads, stores and CAS ops issued by this core");
    g.addCounter("tx_mem_ops", &txMemOps,
                 "memory ops issued inside a transaction");
    g.addCounter("compute_ops", &computeOps,
                 "compute (non-memory) operations executed");
    g.addCounter("preemptions", &preemptions,
                 "threads preempted off this core (quantum/daemon)");
    g.addCounter("ff_batches", &ffBatches,
                 "direct-execution fast-forward batches entered");
    g.addCounter("ff_ops", &ffOps,
                 "ops retired inside fast-forward batches");
}

void
Core::kick()
{
    if (idle_ && !cur_) {
        idle_ = false;
        scheduleStep(0);
    }
}

void
Core::kickParked()
{
    if (idle_ && cur_) {
        idle_ = false;
        scheduleStep(0);
    }
}

void
Core::scheduleStep(Tick delay)
{
    eq_.scheduleIn(delay, EventPriority::Cpu, [this] { step(); },
                   site_step_);
}

bool
Core::shouldPreempt() const
{
    return shouldPreemptAt(eq_.curTick());
}

bool
Core::shouldPreemptAt(Tick at) const
{
    if (at < daemon_until_)
        return true;
    return at >= quantum_end_ && os_.hasReady();
}

void
Core::preempt(ThreadCtx &t, Tick next_step_delay)
{
    ++preemptions;
    ++os_.contextSwitches;
    os_.tracer().record(TraceEventType::CtxSwitch, id_, t.id,
                        invalidTxId, invalidTxId, 1);
    if (t.curTx != invalidTxId) {
        // A mid-transaction thread leaves the core: retire its pending
        // execution ticks now (optimistically, unless already doomed)
        // so the pot stays core-local across the migration.
        Tick retired = prof_->resolveTx(id_, !t.abortPending);
        if (fr_ && t.abortPending && retired)
            fr_->onWasted(t.curTx, retired);
    }
    prof_->set(id_, ProfBucket::CtxSwitch);
    if (params_.flushOnContextSwitch && t.curTx != invalidTxId &&
        txmgr_.isLive(t.curTx)) {
        // VTM-style switch: the transaction's cached blocks must be
        // evicted and tracked by the overflow structures before the
        // thread leaves the core (section 4.7 / 5.3).
        next_step_delay += mem_.flushTxLines(t.curTx);
    }
    t.state = ThreadState::Ready;
    t.core = nullptr;
    os_.makeReady(&t);
    cur_ = nullptr;
    scheduleStep(next_step_delay + params_.contextSwitchLatency);
}

void
Core::daemonPreempt(Tick length)
{
    daemon_until_ = eq_.curTick() + length;
    // The preemption takes effect at the thread's next safe point; an
    // idle core just stays busy with the daemon.
    if (idle_) {
        idle_ = false;
        prof_->set(id_, ProfBucket::CtxSwitch);
        scheduleStep(length);
    }
}

void
Core::step()
{
    Tick now = eq_.curTick();
    if (now < daemon_until_ && !cur_) {
        prof_->set(id_, ProfBucket::CtxSwitch);
        scheduleStep(daemon_until_ - now);
        return;
    }

    if (!cur_) {
        cur_ = os_.pickReady();
        if (!cur_) {
            goIdle();
            return;
        }
        cur_->core = this;
        cur_->state = ThreadState::Running;
        quantum_end_ = params_.osQuantum
                           ? now + params_.osQuantum
                           : maxTick;
        if (last_ && last_ != cur_) {
            ++os_.contextSwitches;
            os_.tracer().record(TraceEventType::CtxSwitch, id_,
                                cur_->id, invalidTxId, invalidTxId, 0);
            last_ = cur_;
            prof_->set(id_, ProfBucket::CtxSwitch);
            scheduleStep(params_.contextSwitchLatency);
            return;
        }
        last_ = cur_;
    }

    ThreadCtx &t = *cur_;

    if (t.abortPending) {
        handleAbort(t);
        return;
    }
    if (t.commitPending) {
        t.state = ThreadState::Running;
        tryCommit(t);
        return;
    }
    if (t.hasPendingResume) {
        t.hasPendingResume = false;
        t.state = ThreadState::Running;
        resumeCoro(t, t.resumeValue);
        return;
    }
    if (t.coroLive) {
        // First resume of a freshly created coroutine.
        t.state = ThreadState::Running;
        resumeCoro(t, 0);
        return;
    }
    beginStep(t);
}

void
Core::beginStep(ThreadCtx &t)
{
    if (t.finished()) {
        t.state = ThreadState::Done;
        t.core = nullptr;
        cur_ = nullptr;
        os_.threadExited(&t);
        // Pick up more work if any.
        if (os_.hasReady()) {
            prof_->set(id_, ProfBucket::CtxSwitch);
            scheduleStep(params_.contextSwitchLatency);
        } else {
            goIdle();
        }
        return;
    }

    const Step &step = t.currentStep();
    if (const TxStep *tx = std::get_if<TxStep>(&step)) {
        if (t.curTx == invalidTxId) {
            t.curTx = txmgr_.begin(t.id, t.proc, eq_.curTick(),
                                   tx->ordered, tx->scope, tx->rank);
        }
        // (Restarted transactions keep their id; TxManager::restart
        // already ran in handleAbort.)
        t.coro = tx->body(MemCtx{});
        t.coroLive = true;
        // Register checkpoint at transaction begin.
        prof_->set(id_, ProfBucket::TxBegin);
        scheduleStep(params_.checkpointLatency);
        return;
    }
    if (const PlainStep *p = std::get_if<PlainStep>(&step)) {
        t.coro = p->body(MemCtx{});
        t.coroLive = true;
        resumeCoro(t, 0);
        return;
    }
    const BarrierStep &b = std::get<BarrierStep>(step);
    ++t.stepIdx;
    std::vector<ThreadCtx *> released;
    if (os_.barrierArrive(b.id, &t, released)) {
        for (ThreadCtx *r : released) {
            if (r != &t) {
                r->state = ThreadState::Ready;
                os_.makeReady(r);
            }
        }
        os_.kickIdleCores();
        prof_->set(id_, ProfBucket::Barrier);
        scheduleStep(params_.barrierLatency);
    } else {
        t.state = ThreadState::WaitBarrier;
        t.core = nullptr;
        cur_ = nullptr;
        if (os_.hasReady()) {
            prof_->set(id_, ProfBucket::CtxSwitch);
            scheduleStep(params_.contextSwitchLatency);
        } else {
            // Nothing else to run: the core sits out the barrier.
            goIdle(ProfBucket::Barrier);
        }
    }
}

void
Core::resumeCoro(ThreadCtx &t, std::uint64_t value)
{
    if (t.abortPending) {
        handleAbort(t);
        return;
    }
    if (shouldPreempt()) {
        // Deliver the value after the thread is rescheduled.
        t.hasPendingResume = true;
        t.resumeValue = value;
        Tick now = eq_.curTick();
        Tick busy = now < daemon_until_ ? daemon_until_ - now : 0;
        preempt(t, busy);
        return;
    }

    if (params_.fastForwardOps > 0 && t.curTx == invalidTxId &&
        params_.trace.path.empty()) {
        fastForward(t, value);
        return;
    }

    const MemYield *op = t.coro.resume(value);
    if (!op) {
        stepFinished(t);
        return;
    }
    runOp(t, *op);
}

void
Core::fastForward(ThreadCtx &t, std::uint64_t value)
{
    const Tick start = eq_.curTick();
    // No batched op may have effects at or past the next pending
    // event's tick (nothing else simulated happens strictly before it,
    // so batched ops observe exactly the natural-path state) or past
    // the run limit (the stats snapshot at the limit must not see
    // future work).
    Tick horizon = eq_.nextEventTick();
    const Tick limit = eq_.runLimit();
    if (limit != maxTick && limit + 1 < horizon)
        horizon = limit + 1;

    ++ffBatches;
    profExec(t);

    Tick adv = 0; // virtual cycles accumulated past start
    unsigned done = 0;
    for (;;) {
        const MemYield *op = t.coro.resume(value);
        if (!op) {
            if (adv == 0) {
                stepFinished(t);
                return;
            }
            std::uint64_t ep = t.epoch;
            eq_.scheduleIn(adv, EventPriority::Cpu, [this, &t, ep] {
                if (t.epoch == ep)
                    stepFinished(t);
            }, site_step_);
            return;
        }

        if (op->kind == OpKind::Compute) {
            ++computeOps;
            ++ffOps;
            t.computeCycles += op->cycles;
            adv += op->cycles ? op->cycles : 1;
            value = 0;
        } else {
            auto pa = os_.translateFast(id_, t.proc, op->vaddr);
            if (!pa) {
                // TLB walk or fault: replay the op on the natural path
                // at its virtual issue time (runOp counts it and runs
                // the full translate() with correctly-timed side
                // effects).
                if (adv == 0) {
                    runOp(t, *op);
                    return;
                }
                MemYield opc = *op;
                std::uint64_t ep = t.epoch;
                eq_.scheduleIn(adv, EventPriority::Cpu,
                               [this, &t, opc, ep] {
                                   if (t.epoch == ep)
                                       runOp(t, opc);
                               }, site_xlat_);
                return;
            }
            ++memOps;
            ++t.memOps;
            ++ffOps;
            Access acc;
            acc.core = id_;
            acc.tx = invalidTxId;
            acc.isWrite = op->kind == OpKind::Store;
            acc.isCas = op->kind == OpKind::Cas;
            acc.paddr = *pa & ~Addr(3);
            acc.storeValue = std::uint32_t(op->value);
            acc.casExpected = std::uint32_t(op->expected);
            auto hit = mem_.trySync(acc);
            if (!hit) {
                // Needs the bus: issue at the virtual time so the bus
                // reservation and grant processing see natural timing.
                // (trySync is side-effect-free on a miss; the re-probe
                // inside issueAccess misses identically.)
                if (adv == 0) {
                    issueAccess(t, acc);
                    return;
                }
                std::uint64_t ep = t.epoch;
                eq_.scheduleIn(adv, EventPriority::Cpu,
                               [this, &t, acc, ep] {
                                   if (t.epoch == ep)
                                       issueAccess(t, acc);
                               }, site_mem_);
                return;
            }
            adv += hit->first;
            value = hit->second.value;
        }

        ++done;
        Tick v = start + adv;
        if (done >= params_.fastForwardOps || v >= horizon ||
            shouldPreemptAt(v)) {
            // Batch exit: hand the next op to resumeCoro at its
            // natural tick (it re-checks preemption/abort there and
            // may open a fresh batch).
            std::uint64_t ep = t.epoch;
            std::uint64_t rv = value;
            eq_.scheduleIn(adv, EventPriority::Cpu, [this, &t, rv, ep] {
                if (t.epoch == ep)
                    resumeCoro(t, rv);
            }, site_compute_);
            return;
        }
    }
}

void
Core::runOp(ThreadCtx &t, const MemYield &op)
{
    if (op.kind == OpKind::Compute) {
        ++computeOps;
        t.computeCycles += op.cycles;
        Tick d = op.cycles ? op.cycles : 1;
        profExec(t);
        std::uint64_t ep = t.epoch;
        eq_.scheduleIn(d, EventPriority::Cpu, [this, &t, ep] {
            if (t.epoch == ep)
                resumeCoro(t, 0);
        }, site_compute_);
        return;
    }

    ++memOps;
    ++t.memOps;
    if (t.curTx != invalidTxId)
        ++txMemOps;

    bool is_write = op.kind == OpKind::Store;
    bool is_cas = op.kind == OpKind::Cas;
    XlatResult xr =
        os_.translate(id_, t.proc, op.vaddr, is_write || is_cas);
    if ((is_write || is_cas) && t.curTx != invalidTxId) {
        os_.noteTxWrite(t.proc, op.vaddr);
        if (wal_) {
            // The redo log records absolute committed values; a CAS's
            // committed value is resolution-dependent, and no
            // durability-eligible workload issues one transactionally
            // (validateParams rejects the lock-based modes).
            panic_if(is_cas, "durable logging cannot capture a "
                             "transactional CAS");
            wal_->noteStore(t.curTx, op.vaddr,
                            std::uint32_t(op.value));
        }
    }

    Access acc;
    acc.core = id_;
    acc.tx = t.curTx;
    acc.isWrite = is_write;
    acc.isCas = is_cas;
    acc.paddr = xr.paddr & ~Addr(3);
    acc.storeValue = std::uint32_t(op.value);
    acc.casExpected = std::uint32_t(op.expected);

    if (xr.latency == 0) {
        issueAccess(t, acc);
    } else {
        // Translation stall: hardware TLB walk, or the full software
        // fault path (which includes any swap I/O).
        prof_->push(id_, xr.faulted ? ProfBucket::FaultSwap
                                    : ProfBucket::StallXlat);
        std::uint64_t ep = t.epoch;
        eq_.scheduleIn(xr.latency, EventPriority::Cpu,
                       [this, &t, acc, ep] {
                           if (t.epoch == ep) {
                               prof_->pop(id_);
                               issueAccess(t, acc);
                           }
                       }, site_xlat_);
    }
}

void
Core::issueAccess(ThreadCtx &t, const Access &acc)
{
    if (t.abortPending) {
        handleAbort(t);
        return;
    }
    if (auto hit = mem_.trySync(acc)) {
        Tick lat = hit->first;
        std::uint32_t v = hit->second.value;
        prof_->push(id_, lat <= params_.l1Latency
                             ? ProfBucket::StallL1
                             : ProfBucket::StallL2);
        std::uint64_t ep = t.epoch;
        eq_.scheduleIn(lat, EventPriority::Cpu, [this, &t, v, ep] {
            if (t.epoch == ep) {
                prof_->pop(id_);
                resumeCoro(t, v);
            }
        }, site_mem_);
        return;
    }
    t.state = ThreadState::WaitMem;
    prof_->push(id_, ProfBucket::StallMem);
    std::uint64_t ep = t.epoch;
    mem_.request(acc, [this, &t, ep](Tick done, AccessResult res) {
        eq_.schedule(done, EventPriority::Cpu, [this, &t, res, ep] {
            if (t.epoch != ep)
                return;
            prof_->pop(id_);
            t.state = ThreadState::Running;
            if (res.txAborted || t.abortPending) {
                handleAbort(t);
                return;
            }
            resumeCoro(t, res.value);
        }, site_mem_);
    });
}

void
Core::stepFinished(ThreadCtx &t)
{
    t.coro.destroy();
    t.coroLive = false;

    if (std::holds_alternative<TxStep>(t.currentStep())) {
        t.commitPending = true;
        prof_->set(id_, ProfBucket::TxCommit);
        std::uint64_t ep = t.epoch;
        eq_.scheduleIn(params_.commitLatency, EventPriority::Cpu,
                       [this, &t, ep] {
                           if (t.epoch != ep)
                               return;
                           if (t.abortPending) {
                               handleAbort(t);
                               return;
                           }
                           tryCommit(t);
                       });
        return;
    }

    ++t.stepIdx;
    profExec(t);
    scheduleStep(1);
}

void
Core::tryCommit(ThreadCtx &t)
{
    CommitResult r = txmgr_.requestCommit(t.curTx);
    if (r == CommitResult::Done) {
        // The attempt's pending execution ticks were useful work.
        prof_->resolveTx(id_, true);
        Tick persist_wait =
            wal_ ? wal_->commitTx(t.curTx, t.id, eq_.curTick()) : 0;
        t.commitPending = false;
        t.curTx = invalidTxId;
        ++t.stepIdx;
        if (persist_wait) {
            // Durable commit: the thread stalls until its record's
            // ordered flush drains from the log device.
            prof_->set(id_, ProfBucket::TxPersist);
            std::uint64_t ep = t.epoch;
            eq_.scheduleIn(persist_wait, EventPriority::Cpu,
                           [this, &t, ep] {
                               if (t.epoch != ep)
                                   return;
                               profExec(t);
                               scheduleStep(1);
                           });
            return;
        }
        profExec(t);
        scheduleStep(1);
        return;
    }
    // Ordered transaction must wait for the commit token. Yield the
    // core if other threads could use it; otherwise stall in place.
    t.state = ThreadState::WaitOrdered;
    if (os_.hasReady()) {
        // Execution is done and only the token is missing: retire the
        // pot as useful before the thread migrates off this core.
        prof_->resolveTx(id_, true);
        prof_->set(id_, ProfBucket::CtxSwitch);
        t.core = nullptr;
        cur_ = nullptr;
        scheduleStep(params_.contextSwitchLatency);
    } else {
        goIdle(ProfBucket::TxCommit);
    }
}

void
Core::handleAbort(ThreadCtx &t)
{
    t.commitPending = false;
    t.hasPendingResume = false;
    ++t.epoch;
    t.coro.destroy();
    t.coroLive = false;
    if (wal_)
        // Nothing aborted ever reaches the log; the attempt's captured
        // redo set is dropped (re-execution captures a fresh one).
        wal_->discard(t.curTx);

    // The aborted attempt's execution was wasted; collapsing the phase
    // stack also cleans up any stall span whose pop the epoch bump
    // just abandoned.
    Tick wasted = prof_->resolveTx(id_, false);
    if (fr_ && wasted)
        fr_->onWasted(t.curTx, wasted);
    prof_->collapse(id_, ProfBucket::TxAbort);

    if (!t.abortCleanupDone) {
        // Copy-PTM restores (and TAV frees) must drain before the
        // transaction re-executes.
        t.state = ThreadState::WaitAbort;
        if (os_.hasReady()) {
            prof_->set(id_, ProfBucket::CtxSwitch);
            t.core = nullptr;
            cur_ = nullptr;
            scheduleStep(params_.contextSwitchLatency);
        } else {
            // Waiting in place for abort cleanup is abort overhead.
            goIdle(ProfBucket::TxAbort);
        }
        return;
    }

    t.abortPending = false;
    t.abortCleanupDone = false;
    ++t.restarts;
    t.state = ThreadState::Running;
    // Exponential backoff keeps a young transaction from spinning
    // against a long-running older one (abort storms).
    const Transaction *txn = txmgr_.get(t.curTx);
    unsigned shift = txn ? std::min(txn->attempts, 8u) : 1;
    txmgr_.restart(t.curTx, eq_.curTick());
    Tick delay = params_.abortRestartLatency << (shift - 1);
    if (params_.contention.randomBackoff && delay > 1) {
        // Randomize within the upper half of the exponential window so
        // two transactions aborted by the same conflict do not retry
        // in lockstep (livelock under symmetric contention). The draw
        // comes from a per-core seeded stream, so runs stay exactly
        // reproducible.
        delay = delay / 2 +
                backoff_rng_.below(std::uint32_t(delay / 2 + 1));
    }
    // beginStep recreates the body coroutine (checkpoint restore).
    scheduleStep(delay);
}

} // namespace ptm
