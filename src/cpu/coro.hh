/**
 * @file
 * C++20 coroutine plumbing for simulated thread code.
 *
 * Workload code (transaction bodies, non-transactional stretches, lock
 * critical sections) is written as ordinary-looking C++ coroutines that
 * co_await memory operations:
 *
 * @code
 *     TxCoro
 *     body(MemCtx m, Work w)
 *     {
 *         for (unsigned i = 0; i < w.n; ++i) {
 *             std::uint64_t v = co_await m.load(w.src + 8 * i);
 *             co_await m.store(w.dst + 8 * i, v * 3 + 1);
 *         }
 *     }
 * @endcode
 *
 * The simulated core pulls one MemYield at a time out of the coroutine,
 * models its timing through the memory system, and resumes the
 * coroutine with the load result. Aborting a transaction destroys the
 * coroutine and re-invokes its factory — that is the register-
 * checkpoint restore of the modeled hardware: all architectural state a
 * transaction body keeps lives in the coroutine frame.
 */

#ifndef PTM_CPU_CORO_HH
#define PTM_CPU_CORO_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ptm
{

/** Kinds of operations a thread coroutine can yield to the core. */
enum class OpKind
{
    Load,    //!< read one word
    Store,   //!< write one word
    Cas,     //!< atomic compare-and-swap of one word
    Compute, //!< burn @c cycles of pure computation
};

/** One operation requested by a thread coroutine. */
struct MemYield
{
    OpKind kind = OpKind::Compute;
    Addr vaddr = 0;
    /** Store value, or CAS swap value. */
    std::uint64_t value = 0;
    /** CAS expected value. */
    std::uint64_t expected = 0;
    /** Compute duration. */
    Tick cycles = 0;
};

/**
 * A suspendable piece of simulated thread code. The coroutine is
 * "lazy": nothing runs until the core first calls resume().
 */
class TxCoro
{
  public:
    struct promise_type
    {
        /** Operation the coroutine is currently suspended on. */
        MemYield pending;
        /** Result to deliver to the suspended co_await (load/CAS). */
        std::uint64_t result = 0;
        bool finished = false;

        /** Sub-coroutine linkage: thread code can co_await another
         *  TxCoro (e.g. a spinlock helper); operations of the deepest
         *  active coroutine bubble up to the core. */
        std::coroutine_handle<promise_type> parent;
        std::coroutine_handle<promise_type> child;

        TxCoro
        get_return_object()
        {
            return TxCoro(
                std::coroutine_handle<promise_type>::from_promise(
                    *this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        /** On completion, transfer control back to the awaiting
         *  parent coroutine (if any). */
        struct FinalAwaiter
        {
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                auto parent = h.promise().parent;
                if (parent) {
                    parent.promise().child = nullptr;
                    return parent;
                }
                return std::noop_coroutine();
            }

            void await_resume() const noexcept {}
        };

        FinalAwaiter
        final_suspend() noexcept
        {
            finished = true;
            return {};
        }

        void return_void() {}

        void
        unhandled_exception()
        {
            panic("exception escaped a simulated thread coroutine");
        }
    };

    /** Awaiter produced by MemCtx operations. */
    struct OpAwaiter
    {
        MemYield op;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<promise_type> h) noexcept
        {
            h.promise().pending = op;
            handle = h;
        }

        std::uint64_t
        await_resume() const noexcept
        {
            return handle.promise().result;
        }

        std::coroutine_handle<promise_type> handle;
    };

    TxCoro() = default;

    explicit TxCoro(std::coroutine_handle<promise_type> h) : h_(h) {}

    TxCoro(TxCoro &&o) noexcept : h_(std::exchange(o.h_, nullptr)) {}

    TxCoro &
    operator=(TxCoro &&o) noexcept
    {
        if (this != &o) {
            destroy();
            h_ = std::exchange(o.h_, nullptr);
        }
        return *this;
    }

    TxCoro(const TxCoro &) = delete;
    TxCoro &operator=(const TxCoro &) = delete;

    ~TxCoro() { destroy(); }

    /** True if a live, unfinished coroutine is held. */
    bool
    runnable() const
    {
        return h_ && !h_.done();
    }

    /** True if the coroutine ran to completion. */
    bool
    done() const
    {
        return !h_ || h_.done();
    }

    /**
     * Resume execution, delivering @p value to the co_await the
     * coroutine is suspended on (ignored at first resume). When the
     * program is nested in sub-coroutines, the deepest active one
     * receives the value and produces the next operation.
     * @return pointer to the next pending operation, or nullptr if the
     *         coroutine finished.
     */
    const MemYield *
    resume(std::uint64_t value = 0)
    {
        panic_if(!h_ || h_.done(), "resuming a finished coroutine");
        auto leaf = deepest();
        leaf.promise().result = value;
        leaf.resume();
        if (h_.done())
            return nullptr;
        return &deepest().promise().pending;
    }

    /**
     * Awaiting a TxCoro from inside another runs it as a
     * sub-coroutine: its memory operations flow to the core as if
     * inlined. The awaited coroutine must be freshly created.
     */
    struct SubAwaiter
    {
        std::coroutine_handle<promise_type> sub;

        bool
        await_ready() const noexcept
        {
            return !sub || sub.done();
        }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<promise_type> h) noexcept
        {
            sub.promise().parent = h;
            h.promise().child = sub;
            return sub; // start the sub-coroutine immediately
        }

        void await_resume() const noexcept {}
    };

    SubAwaiter
    operator co_await() &&
    {
        return SubAwaiter{h_};
    }

    /** Destroy the coroutine frame (abort / cleanup). */
    void
    destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = nullptr;
        }
    }

  private:
    /** Deepest active coroutine of the await chain rooted here. */
    std::coroutine_handle<promise_type>
    deepest() const
    {
        auto h = h_;
        while (h.promise().child && !h.promise().child.done())
            h = h.promise().child;
        return h;
    }

    std::coroutine_handle<promise_type> h_;
};

/**
 * Interface through which coroutine bodies issue simulated operations.
 * Stateless; it only builds awaiters.
 */
class MemCtx
{
  public:
    /** Read the 8-byte word at @p vaddr. */
    TxCoro::OpAwaiter
    load(Addr vaddr) const
    {
        return {MemYield{OpKind::Load, vaddr, 0, 0, 0}, {}};
    }

    /** Write @p value to the 8-byte word at @p vaddr. */
    TxCoro::OpAwaiter
    store(Addr vaddr, std::uint64_t value) const
    {
        return {MemYield{OpKind::Store, vaddr, value, 0, 0}, {}};
    }

    /**
     * Atomic compare-and-swap: if the word at @p vaddr equals
     * @p expected, write @p value. The awaited result is the value
     * observed before the swap (== @p expected on success).
     */
    TxCoro::OpAwaiter
    cas(Addr vaddr, std::uint64_t expected, std::uint64_t value) const
    {
        return {MemYield{OpKind::Cas, vaddr, value, expected, 0}, {}};
    }

    /** Spend @p cycles of computation without touching memory. */
    TxCoro::OpAwaiter
    compute(Tick cycles) const
    {
        return {MemYield{OpKind::Compute, 0, 0, 0, cycles}, {}};
    }
};

/** Factory that (re)creates a coroutine body; re-invoked after abort. */
using CoroFactory = std::function<TxCoro(MemCtx)>;

} // namespace ptm

#endif // PTM_CPU_CORO_HH
