/**
 * @file
 * Simulated in-order CPU core.
 *
 * Each core drives one thread at a time through its coroutine program:
 * it pulls operations, models their timing through the memory system,
 * and handles transactional control flow — begin/commit (ordered
 * commit waits), abort-and-restart, context switches at quantum
 * boundaries and daemon preemptions (transactional cache state is NOT
 * flushed on a switch; PTM's transaction-ID tags make that safe,
 * section 4.7).
 */

#ifndef PTM_CPU_CORE_HH
#define PTM_CPU_CORE_HH

#include <cstdint>

#include "cpu/thread.hh"
#include "mem/mem_system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/profile.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "tx/tx_manager.hh"

namespace ptm
{

class OsKernel;
class WalManager;

class Core
{
  public:
    Core(CoreId id, const SystemParams &params, EventQueue &eq,
         MemSystem &mem, TxManager &txmgr, OsKernel &os);

    CoreId id() const { return id_; }

    /** Wake an idle core (work appeared on the run queue). */
    void kick();

    /**
     * Wake the thread parked on this core (ordered-commit token
     * arrived, abort cleanup finished, or an abort notification needs
     * processing).
     */
    void kickParked();

    /** The thread currently bound to this core (may be parked). */
    ThreadCtx *current() const { return cur_; }

    /** OS daemon activity preempts this core for @p length cycles. */
    void daemonPreempt(Tick length);

    /** Register this core's statistics under "core<N>". */
    void regStats(StatRegistry &reg);

    /** Attach the cycle-accounting profiler (default: inert nil()). */
    void setProfiler(CycleProfiler &prof) { prof_ = &prof; }

    /** Attach the flight recorder (System wiring; off = nullptr). */
    void setFlightRec(FlightRecorder *f) { fr_ = f; }

    /** Attach the write-ahead log (System wiring; volatile = nullptr). */
    void setWal(WalManager *w) { wal_ = w; }

    /** @name Statistics */
    /// @{
    Counter memOps;       //!< loads+stores+CAS issued
    Counter txMemOps;     //!< subset issued inside transactions
    Counter computeOps;
    Counter preemptions;
    Counter ffBatches;    //!< direct-execution fast-forward batches
    Counter ffOps;        //!< ops retired inside fast-forward batches
    /// @}

  private:
    /** Main dispatch: run/park/pick a thread. */
    void step();

    /** Schedule the next step() after @p delay. */
    void scheduleStep(Tick delay);

    /** Begin the thread's current step (tx begin / coro creation). */
    void beginStep(ThreadCtx &t);

    /** Deliver @p value to the coroutine and run the next op. */
    void resumeCoro(ThreadCtx &t, std::uint64_t value);

    /** Model one yielded operation. */
    void runOp(ThreadCtx &t, const MemYield &op);

    /** Issue a memory access (post-translation). */
    void issueAccess(ThreadCtx &t, const Access &acc);

    /**
     * Direct-execution fast-forward: retire up to fastForwardOps
     * non-transactional ops of @p t synchronously at the current tick,
     * advancing the thread's virtual time without per-op events. Only
     * entered with no open transaction; ops are batched strictly while
     * their virtual completion time stays below the next pending
     * event's tick (and the run limit), so no other simulated activity
     * can interleave and every op observes exactly the state it would
     * have observed on the one-event-per-op path. TLB misses, cache
     * misses and batch exits are handed back to the natural path at
     * their virtual issue time.
     */
    void fastForward(ThreadCtx &t, std::uint64_t value);

    /** The current step's coroutine ran to completion. */
    void stepFinished(ThreadCtx &t);

    /** Attempt the (possibly ordered) commit of the current tx. */
    void tryCommit(ThreadCtx &t);

    /** Process a pending logical abort: wait for cleanup / restart. */
    void handleAbort(ThreadCtx &t);

    /** Preempt the current thread back to the run queue. */
    void preempt(ThreadCtx &t, Tick next_step_delay);

    /** True if the thread must yield the core right now. */
    bool shouldPreempt() const;

    /** shouldPreempt() as evaluated at (future) tick @p at. */
    bool shouldPreemptAt(Tick at) const;

    /**
     * Park with no pending continuation (kick()/kickParked() wake).
     * @p b is the phase the parked time is accounted to: plain Idle by
     * default, but e.g. an ordered-commit wait in place is TxCommit.
     */
    void
    goIdle(ProfBucket b = ProfBucket::Idle)
    {
        idle_ = true;
        prof_->set(id_, b);
    }

    /**
     * Mark the core as executing the thread's program: in-transaction
     * ticks accrue to the profiler's pending pot (resolved useful or
     * wasted at commit/abort), non-transactional ticks to NonTx.
     */
    void
    profExec(const ThreadCtx &t)
    {
        if (t.curTx != invalidTxId)
            prof_->txWork(id_);
        else
            prof_->set(id_, ProfBucket::NonTx);
    }

    const CoreId id_;
    const SystemParams &params_;
    EventQueue &eq_;
    MemSystem &mem_;
    TxManager &txmgr_;
    OsKernel &os_;

    CycleProfiler *prof_ = &CycleProfiler::nil();
    FlightRecorder *fr_ = nullptr;
    WalManager *wal_ = nullptr;

    /** Per-core stream for the randomized abort-restart backoff. */
    Pcg32 backoff_rng_;

    ThreadCtx *cur_ = nullptr;
    ThreadCtx *last_ = nullptr;
    bool idle_ = true;
    Tick quantum_end_ = 0;
    Tick daemon_until_ = 0;

    /** Interned host-profile site ids for this core's hot callbacks. */
    std::uint16_t site_step_;
    std::uint16_t site_compute_;
    std::uint16_t site_xlat_;
    std::uint16_t site_mem_;
};

} // namespace ptm

#endif // PTM_CPU_CORE_HH
