/**
 * @file
 * Timing resources: the snoopy bus and the pipelined DRAM controller.
 *
 * Both are modeled as reservation timelines. Callers ask to reserve the
 * resource starting no earlier than "now"; the resource returns the
 * actual start tick given earlier reservations, which yields FIFO
 * queuing with deterministic ordering (events at equal ticks execute in
 * insertion order).
 */

#ifndef PTM_MEM_TIMING_HH
#define PTM_MEM_TIMING_HH

#include <algorithm>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

/**
 * The on-chip interconnect: N independently-arbitrated banks selected
 * by block address (power of two; 1 reproduces the paper's single
 * snoopy bus bit-exactly). One coherence transaction occupies a bank at
 * a time; the minimum round trip (arbitration + snoop + response) is
 * busLatency cycles. Each bank keeps its own reservation timeline
 * (grant queue), so transactions to disjoint banks are granted in
 * parallel while same-bank transactions stay FIFO — coherence order is
 * per-bank grant order, which suffices because conflict detection is
 * per-block and a block maps to exactly one bank.
 */
class BusModel
{
  public:
    explicit BusModel(Tick latency, unsigned banks = 1)
        : latency_(latency),
          bank_mask_(std::max(1u, banks) - 1),
          banks_(std::max(1u, banks))
    {}

    /** Minimum round-trip latency of one transaction. */
    Tick latency() const { return latency_; }

    /** Number of interconnect banks. */
    unsigned numBanks() const { return unsigned(banks_.size()); }

    /** The bank serving block-aligned address @p block. */
    unsigned
    bankOf(Addr block) const
    {
        return unsigned((block >> blockShift) & bank_mask_);
    }

    /**
     * Reserve the bank serving @p block for one transaction of
     * @p occupancy cycles (defaults to the full round trip) starting
     * at or after @p now.
     * @return the tick at which the transaction is granted.
     */
    Tick
    reserve(Addr block, Tick now, Tick occupancy = 0)
    {
        if (occupancy == 0)
            occupancy = latency_;
        Bank &b = banks_[bankOf(block)];
        Tick grant = std::max(now, b.free_at);
        b.free_at = grant + occupancy;
        ++b.transactions;
        b.busy_cycles += occupancy;
        return grant;
    }

    /** Statistics: total transactions granted (all banks). */
    std::uint64_t
    transactions() const
    {
        std::uint64_t n = 0;
        for (const Bank &b : banks_)
            n += b.transactions;
        return n;
    }

    /** Statistics: total cycles any bank was occupied. */
    std::uint64_t
    busyCycles() const
    {
        std::uint64_t n = 0;
        for (const Bank &b : banks_)
            n += b.busy_cycles;
        return n;
    }

    /** Statistics: transactions granted by bank @p i. */
    std::uint64_t bankTransactions(unsigned i) const
    {
        return banks_[i].transactions;
    }

    /** Statistics: cycles bank @p i was occupied. */
    std::uint64_t bankBusyCycles(unsigned i) const
    {
        return banks_[i].busy_cycles;
    }

  private:
    /** One bank's reservation timeline and occupancy accounting. */
    struct Bank
    {
        Tick free_at = 0;
        std::uint64_t transactions = 0;
        std::uint64_t busy_cycles = 0;
    };

    Tick latency_;
    Addr bank_mask_;
    std::vector<Bank> banks_;
};

/**
 * Main-memory controller: fixed access latency with a small number of
 * requests in flight ("up to three requests can be pipelined
 * simultaneously" — PTM paper, section 6.1).
 */
class DramModel
{
  public:
    DramModel(Tick latency, unsigned pipeline,
              Tick write_occupancy = 0)
        : latency_(latency),
          write_occupancy_(write_occupancy ? write_occupancy : latency),
          slot_free_(std::max(1u, pipeline), 0)
    {}

    Tick latency() const { return latency_; }

    /**
     * Issue one memory access at or after @p now.
     * @return the tick at which the access completes.
     */
    Tick
    access(Tick now)
    {
        // Pick the slot that frees earliest.
        auto it = std::min_element(slot_free_.begin(), slot_free_.end());
        Tick start = std::max(now, *it);
        Tick done = start + latency_;
        *it = done;
        ++accesses_;
        return done;
    }

    /**
     * Issue @p n back-to-back accesses (a multi-block copy or a TAV
     * list walk) at or after @p now.
     * @return completion tick of the last access.
     */
    Tick
    accessBurst(Tick now, std::uint64_t n)
    {
        Tick done = now;
        for (std::uint64_t i = 0; i < n; ++i)
            done = access(now);
        return done;
    }

    /**
     * Issue one posted write at or after @p now. Writes occupy a bank
     * slot for the (shorter) write occupancy rather than the full read
     * latency — nobody waits for them, but they consume bandwidth.
     * @return the tick at which the slot frees.
     */
    Tick
    write(Tick now)
    {
        auto it = std::min_element(slot_free_.begin(), slot_free_.end());
        Tick start = std::max(now, *it);
        Tick done = start + write_occupancy_;
        *it = done;
        ++accesses_;
        ++writes_;
        return done;
    }

    /** Statistics: total accesses issued. */
    std::uint64_t accesses() const { return accesses_; }
    /** Statistics: posted writes issued. */
    std::uint64_t writes() const { return writes_; }

  private:
    Tick latency_;
    Tick write_occupancy_;
    std::uint64_t writes_ = 0;
    std::vector<Tick> slot_free_;
    std::uint64_t accesses_ = 0;
};

} // namespace ptm

#endif // PTM_MEM_TIMING_HH
