/**
 * @file
 * Functional physical memory.
 *
 * The simulator is data-functional: every simulated byte really exists,
 * flows through cache lines, home pages, shadow pages and the VTM XADT,
 * and workloads verify their numeric results at the end. That makes the
 * versioning logic of Copy-PTM / Select-PTM testable rather than merely
 * timed.
 *
 * Pages are allocated sparsely on demand; an untouched frame reads as
 * zero.
 */

#ifndef PTM_MEM_PHYS_MEM_HH
#define PTM_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace ptm
{

/** Sparse byte-accurate physical memory. */
class PhysMem
{
  public:
    /** One 4 KB frame of storage. */
    using Frame = std::array<std::uint8_t, pageBytes>;

    /** Read the 8-byte word at physical address @p a (must be aligned). */
    std::uint64_t
    readWord(Addr a) const
    {
        const Frame *f = find(pageOf(a));
        if (!f)
            return 0;
        std::uint64_t v;
        std::memcpy(&v, f->data() + pageOffset(a), sizeof(v));
        return v;
    }

    /** Write the 8-byte word at physical address @p a. */
    void
    writeWord(Addr a, std::uint64_t v)
    {
        Frame &f = get(pageOf(a));
        std::memcpy(f.data() + pageOffset(a), &v, sizeof(v));
    }

    /** Copy one 64-byte block out of memory into @p dst. */
    void
    readBlock(Addr block_addr, std::uint8_t *dst) const
    {
        const Frame *f = find(pageOf(block_addr));
        if (f)
            std::memcpy(dst, f->data() + pageOffset(block_addr),
                        blockBytes);
        else
            std::memset(dst, 0, blockBytes);
    }

    /** Copy one 64-byte block from @p src into memory. */
    void
    writeBlock(Addr block_addr, const std::uint8_t *src)
    {
        Frame &f = get(pageOf(block_addr));
        std::memcpy(f.data() + pageOffset(block_addr), src, blockBytes);
    }

    /** Read the 4-byte word at physical address @p a (must be aligned). */
    std::uint32_t
    readWord32(Addr a) const
    {
        const Frame *f = find(pageOf(a));
        if (!f)
            return 0;
        std::uint32_t v;
        std::memcpy(&v, f->data() + pageOffset(a), sizeof(v));
        return v;
    }

    /** Write the 4-byte word at physical address @p a. */
    void
    writeWord32(Addr a, std::uint32_t v)
    {
        Frame &f = get(pageOf(a));
        std::memcpy(f.data() + pageOffset(a), &v, sizeof(v));
    }

    /** Copy a 4-byte word between two physical addresses. */
    void
    copyWord32(Addr dst, Addr src)
    {
        const Frame *sf = find(pageOf(src));
        std::uint32_t v = 0;
        if (sf)
            std::memcpy(&v, sf->data() + pageOffset(src), sizeof(v));
        Frame &df = get(pageOf(dst));
        std::memcpy(df.data() + pageOffset(dst), &v, sizeof(v));
    }

    /** Copy one 64-byte block between two physical addresses. */
    void
    copyBlock(Addr dst, Addr src)
    {
        std::uint8_t buf[blockBytes];
        readBlock(src, buf);
        writeBlock(dst, buf);
    }

    /** Copy a whole page between frames. */
    void
    copyPage(PageNum dst, PageNum src)
    {
        const Frame *sf = find(src);
        Frame &df = get(dst);
        if (sf)
            df = *sf;
        else
            df.fill(0);
    }

    /** Drop the backing storage of a frame (freed page). */
    void
    releaseFrame(PageNum p)
    {
        frames_.erase(p);
    }

    /** Number of frames currently backed. */
    std::size_t backedFrames() const { return frames_.size(); }

  private:
    // The frame index is on the path of every functional word access;
    // FlatMap keeps the lookup to a couple of contiguous probes. The
    // frames themselves are heap cells, so Frame pointers stay valid
    // across index rehashes.
    const Frame *
    find(PageNum p) const
    {
        const std::unique_ptr<Frame> *slot = frames_.find(p);
        return slot ? slot->get() : nullptr;
    }

    Frame &
    get(PageNum p)
    {
        std::unique_ptr<Frame> &slot = frames_[p];
        if (!slot) {
            slot = std::make_unique<Frame>();
            slot->fill(0);
        }
        return *slot;
    }

    FlatMap<PageNum, std::unique_ptr<Frame>> frames_;
};

} // namespace ptm

#endif // PTM_MEM_PHYS_MEM_HH
