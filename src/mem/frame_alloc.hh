/**
 * @file
 * Physical frame allocator shared by the OS model (process pages) and
 * the PTM supervisor (shadow pages).
 */

#ifndef PTM_MEM_FRAME_ALLOC_HH
#define PTM_MEM_FRAME_ALLOC_HH

#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ptm
{

/** Free-list allocator over the physical frames [1, numFrames). Frame 0
 *  is reserved so that physical address 0 is never mapped. */
class FrameAllocator
{
  public:
    explicit FrameAllocator(std::uint64_t num_frames)
        : num_frames_(num_frames)
    {
        fatal_if(num_frames < 2, "need at least two physical frames");
    }

    /** Allocate one frame; fatal on exhaustion (the OS should have
     *  swapped first). */
    PageNum
    alloc()
    {
        ++allocated_;
        if (!free_list_.empty()) {
            PageNum p = free_list_.back();
            free_list_.pop_back();
            return p;
        }
        fatal_if(next_ >= num_frames_,
                 "out of physical memory (%llu frames)",
                 (unsigned long long)num_frames_);
        return next_++;
    }

    /** Return a frame to the free list. */
    void
    free(PageNum p)
    {
        panic_if(p == 0 || p >= next_, "freeing bad frame %llu",
                 (unsigned long long)p);
        --allocated_;
        free_list_.push_back(p);
    }

    /** Frames currently handed out. */
    std::uint64_t inUse() const { return allocated_; }

    /** Frames still allocatable without swapping. */
    std::uint64_t
    available() const
    {
        return (num_frames_ - next_) + free_list_.size();
    }

    std::uint64_t capacity() const { return num_frames_; }

  private:
    std::uint64_t num_frames_;
    PageNum next_ = 1;
    std::vector<PageNum> free_list_;
    std::uint64_t allocated_ = 0;
};

} // namespace ptm

#endif // PTM_MEM_FRAME_ALLOC_HH
