/**
 * @file
 * MemSystem implementation: MOESI snoopy coherence with transactional
 * extensions, versioning-policy hooks, and bus/DRAM timing.
 */

#include "mem/mem_system.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "sim/logging.hh"

namespace ptm
{

MemSystem::MemSystem(const SystemParams &params, EventQueue &eq,
                     PhysMem &phys, TxManager &txmgr)
    : params_(params), eq_(eq), phys_(phys), txmgr_(txmgr),
      bus_(params.busLatency, params.memBanks),
      dram_(params.dramLatency, params.dramPipeline,
            params.dramWriteOccupancy),
      dir_(std::max(1u, params.memBanks))
{
    panic_if(params.numCores > 64,
             "sharer-filter masks are 64-bit: numCores %u > 64",
             params.numCores);
    for (unsigned c = 0; c < params.numCores; ++c) {
        l1_.push_back(std::make_unique<L1Filter>(params.l1Bytes,
                                                 params.l1Assoc));
        l2_.push_back(std::make_unique<CacheArray>(params.l2Bytes,
                                                   params.l2Assoc));
    }
}

void
MemSystem::regStats(StatRegistry &reg)
{
    StatGroup &g = reg.addGroup("mem");
    g.addCounter("l1_hits", &l1Hits, "accesses satisfied by the L1");
    g.addCounter("l2_hits", &l2Hits, "accesses satisfied by the L2");
    g.addCounter("misses", &misses, "accesses that went to the bus");
    g.addCounter("evictions", &evictions, "cache line evictions");
    g.addCounter("tx_evictions", &txEvictions,
                 "evictions of transactionally marked lines (overflow)");
    g.addCounter("writebacks", &writebacks, "dirty-line writebacks");
    g.addCounter("conflicts", &conflicts,
                 "conflicting transactional accesses detected");
    g.addCounter("false_stalls", &falseStalls,
                 "accesses retried behind in-progress cleanup");
    g.addCounter("cache_to_cache", &cacheToCache,
                 "misses satisfied by a peer cache transfer");
    g.addCounter("ctxsw_flush_aborts", &ctxswFlushAborts,
                 "aborts caused by context-switch line flushes");
    g.addCounter("snoops_filtered", &snoopsFiltered,
                 "per-core snoop probes skipped by the sharer filter");
    g.addScalar("bus_transactions",
                [this] { return double(bus_.transactions()); },
                "coherence bus transactions issued");
    g.addScalar("bus_busy_cycles",
                [this] { return double(bus_.busyCycles()); },
                "cycles any interconnect bank was occupied");
    for (unsigned b = 0; b < bus_.numBanks(); ++b) {
        g.addScalar("bus_bank" + std::to_string(b) + "_busy_cycles",
                    [this, b] {
                        return double(bus_.bankBusyCycles(b));
                    },
                    "cycles interconnect bank " + std::to_string(b) +
                        " was occupied");
    }
    g.addScalar("dram_accesses",
                [this] { return double(dram_.accesses()); },
                "DRAM accesses issued");
}

std::uint64_t
MemSystem::dirSharers(Addr block) const
{
    const auto &part = dir_[bus_.bankOf(block)];
    const std::uint64_t *m = part.find(block);
    return m ? *m : 0;
}

void
MemSystem::dirSet(CoreId c, Addr block)
{
    dir_[bus_.bankOf(block)][block] |= std::uint64_t(1) << c;
}

void
MemSystem::dirClear(CoreId c, Addr block)
{
    auto &part = dir_[bus_.bankOf(block)];
    if (std::uint64_t *m = part.find(block)) {
        *m &= ~(std::uint64_t(1) << c);
        if (*m == 0)
            part.erase(block);
    }
}

std::uint16_t
MemSystem::accessMask(Addr paddr) const
{
    if (wordMode())
        return std::uint16_t(1u << wordIdx(paddr));
    return 0xffff;
}

void
MemSystem::lineConflicts(const Access &acc, std::uint16_t mask,
                         const CacheLine &line,
                         std::vector<TxId> &out) const
{
    bool write = acc.isWrite || acc.isCas;
    for (const auto &m : line.marks) {
        if (m.tx == acc.tx)
            continue;
        std::uint16_t conflict_mask =
            write ? std::uint16_t(m.readWords | m.writeWords)
                  : m.writeWords;
        if ((conflict_mask & mask) && txmgr_.isLive(m.tx))
            out.push_back(m.tx);
    }
}

std::optional<std::pair<Tick, AccessResult>>
MemSystem::trySync(const Access &acc)
{
    const Addr block = blockAlign(acc.paddr);
    const std::uint16_t mask = accessMask(acc.paddr);
    const bool write = acc.isWrite || acc.isCas;
    CoreId c = acc.core;

    // L1 filter: a hit means the mirrored L2 line can satisfy the
    // access with no state changes, or (word mode) with only new
    // same-transaction word bits, which the L1 sets at full speed.
    if (L1Filter::Entry *e = l1_[c]->find(block)) {
        bool ok = false;
        bool extend = false;
        if (acc.tx != invalidTxId) {
            if (e->txId == acc.tx) {
                std::uint16_t have =
                    write ? e->txWriteWords
                          : std::uint16_t(e->txReadWords |
                                          e->txWriteWords);
                ok = (have & mask) == mask && (!write || e->writable);
                if (!ok && wordMode()) {
                    // The entry exists, so no foreign speculative
                    // writer is present (loads are safe) and writable
                    // implies no foreign marks at all (stores are
                    // safe). A prior own write (txWriteWords != 0)
                    // means the committed-writeback already happened.
                    extend = !write ||
                             (e->writable && e->txWriteWords != 0);
                }
            }
        } else {
            ok = e->txId == invalidTxId && (!write || e->writable);
        }
        if (ok || extend) {
            CacheLine *line = l2_[c]->find(block);
            panic_if(!line, "L1 hit without inclusive L2 line");
            std::uint32_t v = applyOp(acc, *line);
            if (extend) {
                setMarks(acc, *line);
                if (TxMark *m = line->findMark(acc.tx)) {
                    e->txReadWords = m->readWords;
                    e->txWriteWords = m->writeWords;
                }
            }
            l2_[c]->touch(*line);
            ++l1Hits;
            return std::make_pair(params_.l1Latency,
                                  AccessResult{v, false});
        }
    }

    // L2 lookup.
    CacheLine *line = l2_[c]->find(block);
    if (!line)
        return std::nullopt;

    std::vector<TxId> confl;
    lineConflicts(acc, mask, *line, confl);
    if (!confl.empty())
        return std::nullopt; // arbitration happens on the bus

    Tick lat = params_.l1Latency + params_.l2Latency;
    if (write) {
        if (!moesiWritable(line->state))
            return std::nullopt; // needs an upgrade
        if (!wordMode() && acc.tx != invalidTxId && line->dirty() &&
            line->writeMask() == 0) {
            // First speculative overwrite of committed dirty data on a
            // line we own exclusively: push the committed version into
            // the writeback buffer (a local action — no coherence
            // transaction needed), then proceed with the store. (Word
            // modes persist per word in noteWordWrite instead.)
            lat += writebackCommitted(*line) + params_.l2Latency;
        }
    }

    std::uint32_t v = applyOp(acc, *line);
    setMarks(acc, *line);
    fillL1(c, *line, acc.tx);
    l2_[c]->touch(*line);
    ++l2Hits;
    return std::make_pair(lat, AccessResult{v, false});
}

void
MemSystem::request(const Access &acc, AccessCallback cb)
{
    Tick treq = eq_.curTick() + params_.l1Latency + params_.l2Latency;
    Tick occupancy = params_.busLatency +
                     (wordMode() ? params_.wordCoherenceOverhead : 0);
    Tick grant = bus_.reserve(blockAlign(acc.paddr), treq, occupancy);
    eq_.schedule(grant, EventPriority::Memory,
                 [this, acc, cb = std::move(cb), grant]() mutable {
                     processGrant(acc, std::move(cb), grant, 0);
                 });
}

void
MemSystem::scheduleRetry(const Access &acc, AccessCallback cb, Tick when,
                         unsigned attempt)
{
    panic_if(attempt > maxRetries,
             "access to %#llx stalled forever (cleanup deadlock?)",
             (unsigned long long)acc.paddr);
    Tick occupancy = params_.busLatency +
                     (wordMode() ? params_.wordCoherenceOverhead : 0);
    Tick grant = bus_.reserve(blockAlign(acc.paddr), when, occupancy);
    eq_.schedule(grant, EventPriority::Memory,
                 [this, acc, cb = std::move(cb), grant,
                  attempt]() mutable {
                     processGrant(acc, std::move(cb), grant, attempt);
                 });
}

void
MemSystem::processGrant(const Access &acc, AccessCallback cb,
                        Tick grant_tick, unsigned attempt)
{
    const Addr block = blockAlign(acc.paddr);
    const std::uint16_t mask = accessMask(acc.paddr);
    const bool write = acc.isWrite || acc.isCas;
    const CoreId c = acc.core;
    ++misses;

    // The requesting transaction may have been aborted while the
    // request sat in the bus queue: squash.
    if (acc.tx != invalidTxId && !txmgr_.isLive(acc.tx)) {
        cb(grant_tick + params_.busLatency, AccessResult{0, true});
        return;
    }

    // 1. Probe the sharer filter once and cache the found lines —
    //    processGrant runs atomically, so no new sharer can appear
    //    before the install below; conflict resolution and evictions
    //    can only *invalidate* lines, which later steps detect through
    //    the cached pointers (the line slab never reallocates).
    //    Ascending-core iteration visits the caches in the same order
    //    the broadcast loops did, so every simulated result is
    //    unchanged. Then collect in-cache conflicts from every sharer
    //    (including our own line: a context-switched transaction's
    //    marks may live there).
    std::vector<std::pair<CoreId, CacheLine *>> sharer_lines;
    {
        std::uint64_t snoop_set = dirSharers(block);
        snoopsFiltered += params_.numCores -
                          unsigned(std::popcount(snoop_set));
        for (std::uint64_t sh = snoop_set; sh; sh &= sh - 1) {
            CoreId o = CoreId(std::countr_zero(sh));
            if (CacheLine *l = l2_[o]->find(block))
                sharer_lines.emplace_back(o, l);
            else
                dirClear(o, block); // self-heal a stale sharer bit
        }
    }
    std::vector<TxId> confl;
    for (auto &[o, l] : sharer_lines) {
        (void)o;
        lineConflicts(acc, mask, *l, confl);
    }
    // 2. Consult the backend about overflowed state (only needed while
    //    the global overflow flag is raised, section 3.1).
    Tick extra = 0;
    std::size_t cache_conflicts = confl.size();
    if (backend_ && backend_->anyOverflow()) {
        CheckResult cr = backend_->checkAccess(
            BlockAccess{block, acc.tx, write, mask});
        extra += cr.extraLatency;
        if (cr.stall) {
            ++falseStalls;
            prof_->charge(ProfCharge::FalseStall,
                          retryDelay + cr.extraLatency);
            scheduleRetry(acc, std::move(cb),
                          grant_tick + retryDelay + cr.extraLatency,
                          attempt + 1);
            return;
        }
        for (TxId t : cr.conflicts)
            confl.push_back(t);
    }

    // 3. Arbitrate: oldest transaction wins; losers abort now (their
    //    speculative lines are scrubbed by the abort hook).
    if (!confl.empty()) {
        ++conflicts;
        if (!txmgr_.resolveConflicts(acc.tx, confl, block)) {
            cb(grant_tick + params_.busLatency, AccessResult{0, true});
            return;
        }
        if (confl.size() > cache_conflicts) {
            // We aborted transactions with *overflowed* state; their
            // background cleanup (e.g. Copy-PTM home-page restores)
            // must drain before our access can observe memory, so go
            // through the stall path.
            scheduleRetry(acc, std::move(cb),
                          grant_tick + retryDelay + extra, attempt + 1);
            return;
        }
    }

    // 4. Re-examine our line after conflict resolution.
    CacheLine *own = l2_[c]->find(block);

    if (own && (!write || moesiWritable(own->state))) {
        // Local completion (a hit that only needed arbitration).
        if (!wordMode() && write && acc.tx != invalidTxId &&
            own->dirty() && own->writeMask() == 0)
            extra += writebackCommitted(*own);
        std::uint32_t v = applyOp(acc, *own);
        setMarks(acc, *own);
        fillL1(c, *own, acc.tx);
        l2_[c]->touch(*own);
        cb(grant_tick + params_.busLatency + extra,
           AccessResult{v, false});
        return;
    }

    // 5. Miss: make room first (the eviction may abort transactions in
    //    wd:cache mode, possibly even the requester).
    CacheLine *target = own;
    if (!target) {
        CacheLine &victim = l2_[c]->victim(block);
        if (victim.valid()) {
            extra += evictLine(c, victim);
            l1Invalidate(c, victim.addr);
            dirClear(c, victim.addr);
            victim.invalidate();
            if (acc.tx != invalidTxId && !txmgr_.isLive(acc.tx)) {
                cb(grant_tick + params_.busLatency + extra,
                   AccessResult{0, true});
                return;
            }
        }
        target = &victim;
    }

    // 6. Snoop: find a source copy. Live marks always travel with the
    //    data: on a write the other copies are invalidated and their
    //    marks migrate; on a read the new shared copy replicates the
    //    source's marks so local conflict checks and word-granularity
    //    abort restores see them on every copy.
    CacheLine *src = nullptr;
    CoreId src_core = 0;
    bool any_other_copy = false;
    std::uint16_t migrated_dirty = 0;
    std::vector<TxMark> migrated;
    for (auto &[o, l] : sharer_lines) {
        if (o == c)
            continue;
        if (!l->valid() || l->addr != block) {
            // The copy was scrubbed by conflict resolution or the
            // eviction above; drop the (possibly stale) sharer bit.
            dirClear(o, block);
            continue;
        }
        any_other_copy = true;
        if (l->state == Moesi::M || l->state == Moesi::O ||
            l->state == Moesi::E) {
            src = l;
            src_core = o;
        }
        if (write) {
            for (const auto &m : l->marks)
                if (txmgr_.isLive(m.tx))
                    migrated.push_back(m);
            migrated_dirty |= l->dirtyWords;
        }
    }
    if (!write && src) {
        for (const auto &m : src->marks)
            if (txmgr_.isLive(m.tx))
                migrated.push_back(m);
    }

    bool dirty_data;
    std::uint16_t union_write = 0;
    std::uint8_t data[blockBytes];
    if (src) {
        std::memcpy(data, src->data, blockBytes);
        dirty_data = src->dirty();
        ++cacheToCache;
    } else if (own) {
        std::memcpy(data, own->data, blockBytes);
        dirty_data = own->dirty();
    } else {
        dirty_data = false;
    }

    Tick data_ready = grant_tick + params_.busLatency;
    std::uint16_t fill_spec_words = 0;
    std::vector<TxMark> fill_foreign;
    if (!src && !own) {
        // Serviced by memory: the fetch is initiated in parallel with
        // conflict resolution (section 4.4).
        Tick dram_done = dram_.access(grant_tick);
        Tick fill_extra =
            backend_ ? backend_->fillBlock(block, acc.tx, data,
                                           fill_spec_words,
                                           fill_foreign)
                     : (phys_.readBlock(block, data), Tick(0));
        data_ready = std::max(data_ready, dram_done + fill_extra);
    }

    if (write) {
        // Invalidate the other copies; their live marks migrate with
        // the data (word-granularity modes can legitimately have
        // non-conflicting marks of other transactions).
        for (auto &[o, l] : sharer_lines) {
            if (o == c)
                continue;
            if (l->valid() && l->addr == block) {
                l->invalidate();
                l1Invalidate(o, block);
            }
            dirClear(o, block);
        }
    } else if (src) {
        // GetS: the owner keeps ownership (M -> O), E degrades to S.
        if (src->state == Moesi::M)
            src->state = Moesi::O;
        else if (src->state == Moesi::E)
            src->state = Moesi::S;
        l1Downgrade(src_core, block);
    }

    // 7. Install / update our line.
    if (!own) {
        target->addr = block;
        target->marks.clear();
        target->dirtyWords = migrated_dirty;
        std::memcpy(target->data, data, blockBytes);
        if (write) {
            target->state = Moesi::M;
        } else if (src) {
            target->state = Moesi::S;
        } else {
            bool may_excl =
                !any_other_copy &&
                (!backend_ ||
                 backend_->mayGrantExclusive(block, acc.tx));
            target->state = may_excl ? Moesi::E : Moesi::S;
        }
    } else {
        // Upgrade of our S/O copy.
        if (src)
            std::memcpy(target->data, data, blockBytes);
        target->dirtyWords |= migrated_dirty;
        target->state = Moesi::M;
    }

    // Merge migrated marks (word-granularity data movement).
    for (const auto &m : migrated) {
        noteTxCore(m.tx, c);
        TxMark &mine = target->mark(m.tx);
        mine.readWords |= m.readWords;
        mine.writeWords |= m.writeWords;
    }
    for (const auto &fm : fill_foreign) {
        // Overflowed speculative words of other live transactions came
        // with the fill: the line must carry their marks.
        noteTxCore(fm.tx, c);
        TxMark &mine = target->mark(fm.tx);
        mine.readWords |= fm.readWords;
        mine.writeWords |= fm.writeWords;
    }
    if (fill_spec_words && acc.tx != invalidTxId) {
        noteTxCore(acc.tx, c);
        // The fill contains the requester's own overflowed speculative
        // words: restore the write marking (the line is speculative,
        // not a committed copy).
        target->mark(acc.tx).writeWords |= fill_spec_words;
        if (!moesiWritable(target->state))
            target->state = Moesi::M;
        else if (target->state == Moesi::E)
            target->state = Moesi::M;
    }
    for (const auto &m : target->marks)
        union_write |= m.writeWords;

    // 8. Before a transaction's first speculative overwrite of dirty
    //    committed data, persist the committed version (block mode;
    //    word modes persist per word in noteWordWrite).
    if (!wordMode() && write && acc.tx != invalidTxId && dirty_data &&
        union_write == 0)
        extra += writebackCommitted(*target);

    if (write && !moesiWritable(target->state))
        target->state = Moesi::M;

    std::uint32_t v = applyOp(acc, *target);
    setMarks(acc, *target);
    fillL1(c, *target, acc.tx);
    l2_[c]->touch(*target);
    dirSet(c, block); // the single line-install site of the directory

    cb(std::max(data_ready, grant_tick + params_.busLatency) + extra,
       AccessResult{v, false});
}

Tick
MemSystem::writebackCommitted(CacheLine &line)
{
    ++writebacks;
    tracer_->record(TraceEventType::Writeback, traceNoId, traceNoId,
                    invalidTxId, invalidTxId, line.addr);
    line.dirtyWords = 0;
    if (backend_)
        return backend_->writebackBlock(line.addr, line.data, 0xffff);
    phys_.writeBlock(line.addr, line.data);
    dram_.write(eq_.curTick()); // posted write
    return 0;
}

Tick
MemSystem::evictLine(CoreId c, CacheLine &victim)
{
    ++evictions;
    Tick lat = 0;

    // wd:cache (Figure 5): word-granularity detection in the caches,
    // but the overflow structures track one writer per block, so a
    // multi-writer block eviction aborts all but the oldest writer.
    if (params_.granularity == Granularity::WordCache &&
        victim.writerCount() > 1) {
        TxId oldest = invalidTxId;
        std::uint64_t best_age = ~std::uint64_t(0);
        for (const auto &m : victim.marks) {
            if (!m.writeWords || !txmgr_.isLive(m.tx))
                continue;
            const Transaction *t = txmgr_.get(m.tx);
            if (t->age < best_age) {
                best_age = t->age;
                oldest = m.tx;
            }
        }
        // Abort hooks restore the younger writers' words in place.
        std::vector<TxId> losers;
        for (const auto &m : victim.marks)
            if (m.writeWords && m.tx != oldest && txmgr_.isLive(m.tx))
                losers.push_back(m.tx);
        for (TxId t : losers) {
            if (in_tx_flush_)
                ++ctxswFlushAborts;
            txmgr_.abort(t, AbortReason::MultiWriterEviction,
                         victim.addr);
        }
    }

    if (tracer_->watchingBlock(victim.addr))
        tracer_->record(
            TraceEventType::Watchpoint, c, traceNoId, invalidTxId,
            invalidTxId, victim.addr,
            std::uint64_t(WatchKind::Evict),
            double(victim.readWord32(byteOff(tracer_->watchAddr()))));
    std::uint16_t spec_words = 0;
    std::vector<TxMark> live;
    for (const auto &m : victim.marks)
        if (txmgr_.isLive(m.tx))
            live.push_back(m);
    tracer_->record(TraceEventType::LineEvict, c, traceNoId,
                    invalidTxId, invalidTxId, victim.addr, live.size());

    for (const auto &m : live) {
        ++txEvictions;
        tracer_->record(TraceEventType::OverflowSpill, c, traceNoId,
                        m.tx, invalidTxId, victim.addr);
        if (backend_) {
            Tick spill = backend_->evictTxBlock(victim.addr, m.tx,
                                                m.writeWords != 0,
                                                victim.data,
                                                m.readWords,
                                                m.writeWords);
            prof_->charge(ProfCharge::OverflowSpill, spill);
            lat += spill;
        }
        spec_words |= m.writeWords;
    }

    if (victim.dirty()) {
        // Write the non-speculative dirty words back to their
        // committed locations (whole block in block mode; exactly the
        // tracked dirty words in word modes, so stale line words can
        // never clobber newer committed memory).
        std::uint16_t commit_words =
            wordMode() ? std::uint16_t(victim.dirtyWords & ~spec_words)
                       : std::uint16_t(~spec_words);
        if (commit_words) {
            ++writebacks;
            tracer_->record(TraceEventType::Writeback, c, traceNoId,
                            invalidTxId, invalidTxId, victim.addr);
            if (backend_) {
                lat += backend_->writebackBlock(victim.addr,
                                                victim.data,
                                                commit_words);
            } else {
                phys_.writeBlock(victim.addr, victim.data);
                dram_.write(eq_.curTick()); // posted write
            }
        }
    }
    return lat;
}

std::uint32_t
MemSystem::applyOp(const Access &acc, CacheLine &line)
{
    unsigned off = byteOff(acc.paddr);
    if (tracer_->watchingWord(wordAlign(acc.paddr))) {
        WatchKind k = acc.isCas ? WatchKind::Cas
                      : acc.isWrite ? WatchKind::Store
                                    : WatchKind::Load;
        double v = acc.isWrite || acc.isCas ? double(acc.storeValue)
                                            : double(line.readWord32(off));
        tracer_->record(TraceEventType::Watchpoint, acc.core,
                        traceNoId, acc.tx, invalidTxId, acc.paddr,
                        std::uint64_t(k), v);
    }
    if (acc.isCas) {
        std::uint32_t old = line.readWord32(off);
        if (old == acc.casExpected) {
            noteWordWrite(acc, line);
            line.writeWord32(off, acc.storeValue);
            line.state = Moesi::M;
        }
        return old;
    }
    if (acc.isWrite) {
        noteWordWrite(acc, line);
        line.writeWord32(off, acc.storeValue);
        line.state = Moesi::M;
        return acc.storeValue;
    }
    return line.readWord32(off);
}

void
MemSystem::noteWordWrite(const Access &acc, CacheLine &line)
{
    std::uint16_t bit = std::uint16_t(1u << wordIdx(acc.paddr));
    if (acc.tx == invalidTxId) {
        // The committed value now lives only in the line.
        line.dirtyWords |= bit;
        return;
    }
    if (wordMode() && (line.dirtyWords & bit)) {
        // A speculative store is about to overwrite a committed word
        // whose only up-to-date copy is this line: persist it first.
        // Batch all of the line's dirty committed words into the one
        // posted write-back so repeated stores across a transaction
        // cost what block mode's whole-line persist costs.
        ++writebacks;
        if (backend_)
            backend_->writebackBlock(line.addr, line.data,
                                     line.dirtyWords);
        else
            phys_.writeBlock(line.addr, line.data);
        line.dirtyWords = 0;
    }
}

void
MemSystem::noteTxCore(TxId tx, CoreId c)
{
    tx_cores_[tx] |= std::uint64_t(1) << c;
}

std::uint64_t
MemSystem::txCoreMask(TxId tx) const
{
    const std::uint64_t *m = tx_cores_.find(tx);
    return m ? *m : 0;
}

void
MemSystem::setMarks(const Access &acc, CacheLine &line)
{
    if (acc.tx == invalidTxId)
        return;
    noteTxCore(acc.tx, acc.core);
    std::uint16_t mask = accessMask(acc.paddr);
    TxMark &m = line.mark(acc.tx);
    if (acc.isWrite || acc.isCas)
        m.writeWords |= mask;
    if (!acc.isWrite || acc.isCas)
        m.readWords |= mask;
}

void
MemSystem::fillL1(CoreId c, const CacheLine &line, TxId tx)
{
    // A foreign speculative writer makes any L1 fast path unsafe.
    bool foreign_any = false;
    bool foreign_write = false;
    for (const auto &m : line.marks) {
        if (m.tx != tx && txmgr_.isLive(m.tx)) {
            foreign_any = true;
            if (m.writeWords)
                foreign_write = true;
        }
    }
    if (foreign_write) {
        l1_[c]->invalidate(line.addr);
        return;
    }

    L1Filter::Entry &e = l1_[c]->insert(line.addr);
    e.writable = moesiWritable(line.state) && !foreign_any;
    e.txId = tx;
    e.txReadWords = 0;
    e.txWriteWords = 0;
    if (tx != invalidTxId) {
        for (const auto &m : line.marks) {
            if (m.tx == tx) {
                e.txReadWords = m.readWords;
                e.txWriteWords = m.writeWords;
                break;
            }
        }
    }
}

void
MemSystem::l1Invalidate(CoreId c, Addr block)
{
    l1_[c]->invalidate(block);
}

void
MemSystem::l1Downgrade(CoreId c, Addr block)
{
    l1_[c]->downgrade(block);
}

void
MemSystem::commitClearTx(TxId tx)
{
    for (std::uint64_t m = txCoreMask(tx); m; m &= m - 1) {
        CoreId c = CoreId(std::countr_zero(m));
        l2_[c]->forEachValid([&](CacheLine &l) {
            if (TxMark *m = l.findMark(tx)) {
                // The speculative words become committed: their only
                // up-to-date copy is this line now.
                l.dirtyWords |= m->writeWords;
                l.removeMark(tx);
            }
        });
        l1_[c]->forEachValid([&](L1Filter::Entry &e) {
            if (e.txId == tx) {
                e.txId = invalidTxId;
                e.txReadWords = 0;
                e.txWriteWords = 0;
            }
        });
    }
    tx_cores_.erase(tx);
}

void
MemSystem::abortInvalidate(TxId tx)
{
    const bool block_mode = !wordMode();
    for (std::uint64_t m = txCoreMask(tx); m; m &= m - 1) {
        CoreId c = CoreId(std::countr_zero(m));
        l2_[c]->forEachValid([&](CacheLine &l) {
            TxMark *m = l.findMark(tx);
            if (!m)
                return;
            if (m->writeWords) {
                if (block_mode) {
                    l1Invalidate(c, l.addr);
                    dirClear(c, l.addr);
                    l.invalidate();
                    return;
                }
                restoreWords(l, *m);
                // The restored words match committed memory again.
                l.dirtyWords &= std::uint16_t(~m->writeWords);
            }
            l.removeMark(tx);
        });
        l1_[c]->forEachValid([&](L1Filter::Entry &e) {
            if (e.txId == tx)
                e.valid = false;
        });
    }
    tx_cores_.erase(tx);
}

void
MemSystem::restoreWords(CacheLine &line, const TxMark &mark)
{
    std::uint16_t w = mark.writeWords;
    for (unsigned i = 0; i < wordsPerBlock; ++i) {
        if (!(w & (1u << i)))
            continue;
        Addr word_addr = line.addr + Addr(i) * wordBytes;
        std::uint32_t committed =
            backend_ ? backend_->readCommittedWord32(word_addr)
                     : phys_.readWord32(word_addr);
        if (tracer_->watchingWord(word_addr))
            tracer_->record(TraceEventType::Watchpoint, traceNoId,
                            traceNoId, mark.tx, invalidTxId, word_addr,
                            std::uint64_t(WatchKind::Restore),
                            double(committed));
        line.writeWord32(i * unsigned(wordBytes), committed);
    }
}

Tick
MemSystem::flushTxLines(TxId tx)
{
    Tick lat = 0;
    in_tx_flush_ = true;
    for (std::uint64_t m = txCoreMask(tx); m; m &= m - 1) {
        CoreId c = CoreId(std::countr_zero(m));
        l2_[c]->forEachValid([&](CacheLine &l) {
            if (!l.findMark(tx))
                return;
            lat += evictLine(c, l);
            l1Invalidate(c, l.addr);
            dirClear(c, l.addr);
            l.invalidate();
        });
    }
    in_tx_flush_ = false;
    tx_cores_.erase(tx);
    return lat;
}

Tick
MemSystem::flushPage(PageNum home)
{
    Tick lat = 0;
    for (CoreId c = 0; c < params_.numCores; ++c) {
        l2_[c]->forEachValid([&](CacheLine &l) {
            if (pageOf(l.addr) != home)
                return;
            lat += evictLine(c, l);
            l1Invalidate(c, l.addr);
            dirClear(c, l.addr);
            l.invalidate();
        });
    }
    return lat;
}

std::uint32_t
MemSystem::debugReadWord32(Addr paddr, TxId tx)
{
    (void)tx;
    Addr block = blockAlign(paddr);
    const CacheLine *best = nullptr;
    for (CoreId c = 0; c < params_.numCores; ++c) {
        if (const CacheLine *l = l2_[c]->find(block)) {
            if (!best || l->dirty())
                best = l;
        }
    }
    if (best)
        return best->readWord32(byteOff(paddr));
    if (backend_)
        return backend_->readCommittedWord32(wordAlign(paddr));
    return phys_.readWord32(wordAlign(paddr));
}

} // namespace ptm
