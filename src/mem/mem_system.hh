/**
 * @file
 * The coherent memory system of the simulated CMP.
 *
 * MemSystem owns the per-core L1 filters and L2 caches, the snoopy
 * MOESI bus, and the DRAM controller, and routes every access through
 * them. It implements the transactional-coherence rules of the paper:
 *
 *  - eager conflict detection at bus-grant time (in-cache marks) plus a
 *    backend check against overflowed state (section 4.4),
 *  - oldest-transaction-wins arbitration via TxManager,
 *  - speculative versioning in the L2: committed dirty data is forced
 *    back to memory before a transaction's first speculative overwrite,
 *  - eviction of transactional blocks triggers backend overflow
 *    handling (section 4.4.3),
 *  - flash commit (clear marks) and abort (invalidate speculative
 *    lines) exposed as TxManager hooks,
 *  - the wd:cache / wd:cache+mem conflict granularities of Figure 5.
 *
 * Timing model: accesses that the L1/L2 can satisfy locally complete
 * synchronously (trySync) in 1 or 7 cycles; everything else becomes a
 * bus transaction processed atomically at bus-grant time, with data
 * return either cache-to-cache (bus round trip) or through the DRAM
 * pipeline. Processing transactions atomically at grant order models a
 * snoopy bus exactly: the bus grant order is the coherence order.
 */

#ifndef PTM_MEM_MEM_SYSTEM_HH
#define PTM_MEM_MEM_SYSTEM_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "mem/phys_mem.hh"
#include "mem/timing.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "tx/tm_backend.hh"
#include "tx/tx_manager.hh"

namespace ptm
{

/** One 4-byte memory access issued by a core. */
struct Access
{
    CoreId core = 0;
    /** Requesting transaction; invalidTxId for non-transactional. */
    TxId tx = invalidTxId;
    bool isWrite = false;
    bool isCas = false;
    /** Home physical address (4-byte aligned). */
    Addr paddr = 0;
    std::uint32_t storeValue = 0;
    std::uint32_t casExpected = 0;
};

/** Result delivered for an access. */
struct AccessResult
{
    /** Load result / value observed by a CAS. */
    std::uint32_t value = 0;
    /**
     * The requesting transaction was aborted while this access was in
     * flight; the access had no effect and the core must restart the
     * transaction.
     */
    bool txAborted = false;
};

/** Completion callback: (completion tick, result). */
using AccessCallback = std::function<void(Tick, AccessResult)>;

class MemSystem
{
  public:
    MemSystem(const SystemParams &params, EventQueue &eq, PhysMem &phys,
              TxManager &txmgr);

    /** Install the unbounded-TM backend (must outlive MemSystem). */
    void setBackend(TmBackend *backend) { backend_ = backend; }

    /** Attach the event tracer (System wiring; defaults to nil). */
    void setTracer(Tracer *t) { tracer_ = t; }

    /** Attach the cycle profiler (System wiring; defaults to nil). */
    void setProfiler(CycleProfiler *p) { prof_ = p; }

    /**
     * Attempt to complete @p acc without a bus transaction.
     * @return (latency, result) if it hit locally, std::nullopt if the
     *         access needs the asynchronous path.
     */
    std::optional<std::pair<Tick, AccessResult>>
    trySync(const Access &acc);

    /**
     * Full access path. @p cb fires exactly once at completion (which
     * may report txAborted).
     */
    void request(const Access &acc, AccessCallback cb);

    /** @name TxManager hooks */
    /// @{
    /** Flash-clear the marks of @p tx in all caches (logical commit). */
    void commitClearTx(TxId tx);
    /**
     * Logical abort: drop the speculative data of @p tx from all
     * caches (invalidate whole lines in block mode; restore the
     * written words in word-granularity modes) and clear its marks.
     */
    void abortInvalidate(TxId tx);
    /// @}

    /**
     * Evict every cached block of home page @p home (swap-out or
     * explicit flush): transactional marks overflow to the backend,
     * dirty data is written back.
     * @return latency of the flush.
     */
    Tick flushPage(PageNum home);

    /**
     * Evict every cache line marked by transaction @p tx (the
     * flush-on-context-switch ablation, section 4.7).
     * @return latency of the flush.
     */
    Tick flushTxLines(TxId tx);


    /**
     * Functional debug read of the 4-byte word at @p paddr as the
     * given transaction (or committed state for invalidTxId):
     * checks caches for the freshest copy, then asks the backend.
     */
    std::uint32_t debugReadWord32(Addr paddr, TxId tx = invalidTxId);

    /** @name Component access for stats and tests */
    /// @{
    BusModel &bus() { return bus_; }
    DramModel &dram() { return dram_; }
    CacheArray &l2(CoreId c) { return *l2_[c]; }
    L1Filter &l1(CoreId c) { return *l1_[c]; }
    const SystemParams &params() const { return params_; }
    /// @}

    /** Register this component's statistics under "mem". */
    void regStats(StatRegistry &reg);

    /** @name Statistics */
    /// @{
    Counter l1Hits;
    Counter l2Hits;
    Counter misses;
    Counter evictions;      //!< all L2 evictions (Table 1 "mop/evict")
    Counter txEvictions;    //!< evictions carrying transactional marks
    Counter writebacks;
    Counter conflicts;      //!< arbitrated conflicts
    Counter falseStalls;    //!< retries due to cleanup-in-progress
    Counter cacheToCache;
    /** Aborts forced by a context-switch flush of tx cache lines
     *  (the flushOnContextSwitch ablation, section 4.7). */
    Counter ctxswFlushAborts;
    /** Per-core snoop probes the sharer-filter directory skipped. */
    Counter snoopsFiltered;
    /// @}

  private:
    /** Word index (0..15) of @p paddr within its block. */
    static unsigned
    wordIdx(Addr paddr)
    {
        return unsigned((paddr >> wordShift) & (wordsPerBlock - 1));
    }

    /** In-block byte offset of @p paddr (4-byte aligned). */
    static unsigned
    byteOff(Addr paddr)
    {
        return unsigned(paddr & (blockBytes - 1) & ~Addr(3));
    }

    /** Access mask at the configured conflict granularity. */
    std::uint16_t accessMask(Addr paddr) const;

    /** True if word-granularity conflict detection is enabled. */
    bool
    wordMode() const
    {
        return params_.granularity != Granularity::Block;
    }

    /** True in the end-to-end word-granularity mode. */
    bool
    wordMemMode() const
    {
        return params_.granularity == Granularity::WordCacheMem;
    }

    /**
     * Collect in-cache conflicts of @p acc against marks on @p line
     * (skipping the requester's own marks). Appends live transaction
     * ids to @p out.
     */
    void lineConflicts(const Access &acc, std::uint16_t mask,
                       const CacheLine &line,
                       std::vector<TxId> &out) const;

    /** Process one granted bus transaction. */
    void processGrant(const Access &acc, AccessCallback cb,
                      Tick grant_tick, unsigned attempt);

    /** Retry a stalled access after a delay. */
    void scheduleRetry(const Access &acc, AccessCallback cb,
                       Tick when, unsigned attempt);

    /**
     * Evict @p victim from core @p c's L2 (overflow marks, write back
     * dirty data). @return latency of the eviction handling.
     */
    Tick evictLine(CoreId c, CacheLine &victim);

    /**
     * Force the committed version of a dirty line to memory before its
     * first speculative overwrite. @return writeback latency.
     */
    Tick writebackCommitted(CacheLine &line);

    /** Apply a load/store/CAS to an L2 line; returns the result value. */
    std::uint32_t applyOp(const Access &acc, CacheLine &line);

    /**
     * Bookkeeping before a word write: track committed-dirty words
     * and persist a committed word about to be speculatively
     * overwritten (word-granularity modes).
     */
    void noteWordWrite(const Access &acc, CacheLine &line);

    /** Set the requester's transactional marks on a line + L1 mirror. */
    void setMarks(const Access &acc, CacheLine &line);

    /** Refresh core @p c's L1 entry mirroring @p line for tx @p tx. */
    void fillL1(CoreId c, const CacheLine &line, TxId tx);

    /** Back-invalidate / downgrade L1s when an L2 line changes. */
    void l1Invalidate(CoreId c, Addr block);
    void l1Downgrade(CoreId c, Addr block);

    /**
     * Restore the speculatively-written words of @p tx in @p line from
     * the committed version (word-granularity abort path).
     */
    void restoreWords(CacheLine &line, const TxMark &mark);

    /** @name Sharer-filter directory
     *
     * One FlatMap per interconnect bank, mapping a block address to a
     * 64-bit mask of cores whose L2 *may* hold the block. The mask is
     * conservative: bits are set at the single line-install site
     * (processGrant) and cleared lazily — at invalidation sites and
     * self-healing on any probe that finds no line — so a stale bit
     * only costs one wasted probe, never a missed snoop. Iterating set
     * bits in ascending core order visits exactly the cores the
     * broadcast loops visited, so simulated results are unchanged; the
     * filter only removes guaranteed-miss probes.
     */
    /// @{
    /** Mask of cores that may cache @p block (0 when untracked). */
    std::uint64_t dirSharers(Addr block) const;
    /** Record that core @p c now caches @p block. */
    void dirSet(CoreId c, Addr block);
    /** Record that core @p c no longer caches @p block. */
    void dirClear(CoreId c, Addr block);
    /// @}

    /** @name Per-transaction mark filter
     *
     * Conservative mask of cores whose caches may hold marks (or L1
     * tx entries) of a transaction. Marks enter a core's cache only on
     * that core's own accesses (setMarks, migrated/fill-foreign mark
     * merges in processGrant), so the bit is set there; the commit,
     * abort, and tx-flush clear paths then scan only the masked cores'
     * caches instead of every core's — the visited lines (and hence
     * every simulated result) are identical, the full-machine sweep
     * cost is not. Never cleared while the transaction lives except by
     * the clear paths themselves, which remove every mark they cover.
     */
    /// @{
    /** Record that core @p c's caches may hold marks of @p tx. */
    void noteTxCore(TxId tx, CoreId c);
    /** Conservative mask of cores holding marks of @p tx. */
    std::uint64_t txCoreMask(TxId tx) const;
    /// @}

    const SystemParams params_;
    EventQueue &eq_;
    PhysMem &phys_;
    TxManager &txmgr_;
    TmBackend *backend_ = nullptr;
    Tracer *tracer_ = &Tracer::nil();
    CycleProfiler *prof_ = &CycleProfiler::nil();

    BusModel bus_;
    DramModel dram_;
    std::vector<std::unique_ptr<L1Filter>> l1_;
    std::vector<std::unique_ptr<CacheArray>> l2_;

    /** Sharer-filter directory, one partition per interconnect bank. */
    std::vector<FlatMap<Addr, std::uint64_t>> dir_;

    /** Per-transaction mark filter (see noteTxCore). */
    FlatMap<TxId, std::uint64_t> tx_cores_;

    /** True while flushTxLines runs (abort-cause attribution). */
    bool in_tx_flush_ = false;

    /** Retry delay for cleanup-in-progress stalls. */
    static constexpr Tick retryDelay = 40;
    /** Give up after this many retries (deadlock detector). */
    static constexpr unsigned maxRetries = 100000;
};

} // namespace ptm

#endif // PTM_MEM_MEM_SYSTEM_HH
