/**
 * @file
 * Quickstart: build a 4-core Select-PTM system, run a few concurrent
 * transactions whose combined footprint overflows the caches, and
 * inspect the statistics.
 *
 * Thread code is written as C++20 coroutines that co_await simulated
 * memory operations; a TxStep makes the body a transaction that the
 * simulated hardware executes speculatively, aborts on conflicts
 * (oldest transaction wins) and restarts from the coroutine factory —
 * the register-checkpoint restore of the modeled machine.
 *
 * Build & run:   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "harness/system.hh"

using namespace ptm;

int
main()
{
    // The default SystemParams reproduce the machine of the PTM paper:
    // 4 cores, 16 KB L1 / 256 KB L2, snoopy MOESI bus, 200-cycle DRAM,
    // a 512-entry SPT cache and a 2048-entry TAV cache in the VTS.
    SystemParams params;
    params.tmKind = TmKind::SelectPtm;

    System sys(params);
    ProcId proc = sys.createProcess();

    constexpr Addr kCounter = 0x10000;
    constexpr Addr kArray = 0x200000;
    constexpr unsigned kIters = 50;
    constexpr unsigned kThreads = 4;

    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            TxStep tx;
            tx.body = [t](MemCtx m) -> TxCoro {
                // A shared counter increment: transactions of all four
                // threads conflict here and serialize safely.
                std::uint64_t v = co_await m.load(kCounter);
                co_await m.compute(25);
                co_await m.store(kCounter, std::uint32_t(v + 1));
                // Plus some private work on the thread's own pages.
                for (unsigned b = 0; b < 32; ++b)
                    co_await m.store(kArray + t * 0x10000 +
                                         b * blockBytes,
                                     v * 100 + b);
            };
            steps.push_back(std::move(tx));
        }
        sys.addThread(proc, std::move(steps), "worker");
    }

    Tick end = sys.run();
    RunStats s = sys.stats();

    std::printf("simulated cycles : %llu\n",
                (unsigned long long)end);
    std::printf("commits          : %llu\n",
                (unsigned long long)s.commits);
    std::printf("aborts           : %llu\n",
                (unsigned long long)s.aborts);
    std::printf("conflicts        : %llu\n",
                (unsigned long long)s.conflicts);
    std::printf("final counter    : %u (expected %u)\n",
                sys.readWord32(proc, kCounter), kThreads * kIters);

    return sys.readWord32(proc, kCounter) == kThreads * kIters ? 0 : 1;
}
