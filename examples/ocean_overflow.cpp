/**
 * @file
 * Unbounded-transaction demo: the ocean kernel's band transactions
 * write ~290 KB each — more than the 256 KB L2 — so the hardware TM
 * must spill speculative state. This example runs the same workload on
 * Select-PTM and on the VTM baseline and contrasts how they pay for
 * the overflow:
 *
 *  - Select-PTM spreads versions across home/shadow pages and commits
 *    by toggling selection bits (no data copies);
 *  - VTM buffers speculative blocks in its XADT and must copy every
 *    one of them back to memory at commit, stalling accessors.
 *
 * Build & run:   ./build/examples/example_ocean_overflow
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace ptm;

int
main()
{
    SystemParams sp;
    sp.tmKind = TmKind::Serial;
    Tick serial = runWorkload("ocean", sp, /*scale=*/1, 4).cycles;
    std::printf("ocean, single thread            : %llu cycles\n\n",
                (unsigned long long)serial);

    for (TmKind kind : {TmKind::SelectPtm, TmKind::Vtm}) {
        SystemParams prm;
        prm.tmKind = kind;
        ExperimentResult r = runWorkload("ocean", prm, 1, 4);
        const RunStats &s = r.stats;
        std::printf("%s on 4 cores:\n", tmKindName(kind));
        std::printf("  cycles            : %llu  (%+.0f%% speedup)\n",
                    (unsigned long long)r.cycles,
                    speedupPct(serial, r.cycles));
        std::printf("  commits / aborts  : %llu / %llu\n",
                    (unsigned long long)s.commits,
                    (unsigned long long)s.aborts);
        std::printf("  tx evictions      : %llu (overflowed blocks)\n",
                    (unsigned long long)s.txEvictions);
        if (kind == TmKind::SelectPtm) {
            std::printf("  shadow pages      : %llu allocated, "
                        "%llu freed\n",
                        (unsigned long long)s.shadowAllocs,
                        (unsigned long long)s.shadowFrees);
            std::printf("  commit walk nodes : %llu (no data copies)\n",
                        (unsigned long long)s.commitWalkNodes);
        } else {
            std::printf("  XADT copy-backs   : %llu blocks copied at "
                        "commit\n",
                        (unsigned long long)s.xadtCopybacks);
            std::printf("  stalls            : %llu accesses waited "
                        "for copy-backs\n",
                        (unsigned long long)s.stalls);
        }
        std::printf("  result verified   : %s\n\n",
                    r.verified ? "yes" : "NO");
    }
    return 0;
}
