/**
 * @file
 * Inter-process shared-memory transactions (section 3.5.3).
 *
 * PTM's structures (SPT entries, TAV lists) are indexed by *physical*
 * page, so two processes mapping the same physical page at different
 * virtual addresses still get correct conflict detection — a guarantee
 * VTM cannot give, because its XADT lives in each process's private
 * virtual address space.
 *
 * Two processes map one shared segment at different virtual bases and
 * run transactional increments on the same shared counters; the final
 * values prove atomicity across address spaces.
 *
 * Build & run:   ./build/examples/example_shared_memory_ipc
 */

#include <cstdio>

#include "harness/system.hh"

using namespace ptm;

int
main()
{
    SystemParams params;
    params.tmKind = TmKind::SelectPtm;
    System sys(params);

    ProcId a = sys.createProcess();
    ProcId b = sys.createProcess();

    // The same physical segment appears at 0x4000000 in process A and
    // at 0x9990000 in process B (the general mmap case).
    constexpr Addr base_a = 0x4000000;
    constexpr Addr base_b = 0x9990000;
    constexpr unsigned kPages = 4;
    sys.shareSegmentAt({{a, base_a}, {b, base_b}}, kPages);

    constexpr unsigned kCounters = 8;
    constexpr unsigned kIters = 60;

    auto worker = [&](ProcId proc, Addr base, unsigned salt) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            TxStep tx;
            tx.body = [base, salt](MemCtx m) -> TxCoro {
                for (unsigned c = 0; c < kCounters; ++c) {
                    Addr addr = base + c * 512;
                    std::uint64_t v = co_await m.load(addr);
                    co_await m.compute(10 + salt);
                    co_await m.store(addr, std::uint32_t(v + 1));
                }
            };
            steps.push_back(std::move(tx));
        }
        sys.addThread(proc, std::move(steps), "ipc");
    };

    // Two threads per process, all hammering the same physical
    // counters through their own page tables and TLBs.
    worker(a, base_a, 1);
    worker(a, base_a, 3);
    worker(b, base_b, 5);
    worker(b, base_b, 7);

    sys.run();
    RunStats s = sys.stats();

    bool ok = true;
    for (unsigned c = 0; c < kCounters; ++c) {
        std::uint32_t va = sys.readWord32(a, base_a + c * 512);
        std::uint32_t vb = sys.readWord32(b, base_b + c * 512);
        std::printf("counter %u: process A sees %u, process B sees %u "
                    "(expected %u)\n",
                    c, va, vb, 4 * kIters);
        ok = ok && va == 4 * kIters && vb == 4 * kIters;
    }
    std::printf("\ncross-process conflicts arbitrated: %llu "
                "(aborts: %llu)\n",
                (unsigned long long)s.conflicts,
                (unsigned long long)s.aborts);
    std::printf("atomicity across address spaces: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
