/**
 * @file
 * Ordered transactions as thread-level speculation (section 2.2).
 *
 * "Ordered transactions are used by programmers when they do not know
 * if there is a potential loop-carried dependency in a loop that they
 * want to parallelize." This example parallelizes exactly such a loop:
 * a sparse pointer-chase update where a few iterations really do
 * depend on earlier ones. Each iteration becomes an ordered
 * transaction; independent iterations run concurrently, while the
 * hardware detects the true dependences, aborts the mis-speculated
 * iterations, and re-runs them in order — the sequential result is
 * guaranteed.
 *
 * Build & run:   ./build/examples/example_ordered_speculation
 */

#include <cstdio>
#include <vector>

#include "harness/system.hh"
#include "workloads/workload.hh" // mixHash

using namespace ptm;

namespace
{

constexpr unsigned kElems = 4096;
constexpr unsigned kIters = 96;
constexpr Addr kData = 0x1000000;

/** Iteration i updates element target(i); a few iterations read the
 *  element written by the previous iteration (a real dependency). */
unsigned
target(unsigned i)
{
    return mixHash(i * 977 + 5) % kElems;
}

bool
dependsOnPrev(unsigned i)
{
    return i % 7 == 3; // sparse, irregular loop-carried dependencies
}

} // namespace

int
main()
{
    SystemParams params;
    params.tmKind = TmKind::SelectPtm;
    System sys(params);
    ProcId proc = sys.createProcess();
    std::uint32_t scope = sys.createOrderedScope();

    // Host reference: the sequential execution of the loop.
    std::vector<std::uint32_t> ref(kElems, 0);
    for (unsigned i = 0; i < kIters; ++i) {
        std::uint32_t in =
            dependsOnPrev(i) && i ? ref[target(i - 1)] : i;
        ref[target(i)] += in * 3 + 1;
    }

    // Parallel version: iterations dealt round-robin to 4 threads as
    // ordered transactions with rank = iteration index.
    constexpr unsigned kThreads = 4;
    for (unsigned t = 0; t < kThreads; ++t) {
        std::vector<Step> steps;
        for (unsigned i = t; i < kIters; i += kThreads) {
            TxStep tx;
            tx.ordered = true;
            tx.scope = scope;
            tx.rank = i;
            tx.body = [i](MemCtx m) -> TxCoro {
                std::uint32_t in = i;
                if (dependsOnPrev(i) && i) {
                    in = std::uint32_t(co_await m.load(
                        kData + target(i - 1) * 4));
                }
                co_await m.compute(50); // iteration body work
                Addr addr = kData + target(i) * 4;
                std::uint32_t v =
                    std::uint32_t(co_await m.load(addr));
                co_await m.store(addr, v + in * 3 + 1);
            };
            steps.push_back(std::move(tx));
        }
        sys.addThread(proc, std::move(steps), "speculate");
    }

    sys.run();
    RunStats s = sys.stats();

    bool ok = true;
    for (unsigned e = 0; e < kElems; ++e)
        if (sys.readWord32(proc, kData + e * 4) != ref[e])
            ok = false;

    std::printf("ordered transactions committed : %llu\n",
                (unsigned long long)s.commits);
    std::printf("mis-speculations (aborts)      : %llu\n",
                (unsigned long long)s.aborts);
    std::printf("sequential semantics preserved : %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
