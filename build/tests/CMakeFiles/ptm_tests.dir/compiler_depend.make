# Empty compiler generated dependencies file for ptm_tests.
# This may be replaced when dependencies are built.
