
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_tlb.cc" "tests/CMakeFiles/ptm_tests.dir/test_cache_tlb.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_cache_tlb.cc.o.d"
  "/root/repo/tests/test_coro_locks.cc" "tests/CMakeFiles/ptm_tests.dir/test_coro_locks.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_coro_locks.cc.o.d"
  "/root/repo/tests/test_misc_units.cc" "tests/CMakeFiles/ptm_tests.dir/test_misc_units.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_misc_units.cc.o.d"
  "/root/repo/tests/test_moesi.cc" "tests/CMakeFiles/ptm_tests.dir/test_moesi.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_moesi.cc.o.d"
  "/root/repo/tests/test_ptm_structures.cc" "tests/CMakeFiles/ptm_tests.dir/test_ptm_structures.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_ptm_structures.cc.o.d"
  "/root/repo/tests/test_random_tester.cc" "tests/CMakeFiles/ptm_tests.dir/test_random_tester.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_random_tester.cc.o.d"
  "/root/repo/tests/test_sim_kernel.cc" "tests/CMakeFiles/ptm_tests.dir/test_sim_kernel.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_sim_kernel.cc.o.d"
  "/root/repo/tests/test_tm_integration.cc" "tests/CMakeFiles/ptm_tests.dir/test_tm_integration.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_tm_integration.cc.o.d"
  "/root/repo/tests/test_tx_manager.cc" "tests/CMakeFiles/ptm_tests.dir/test_tx_manager.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_tx_manager.cc.o.d"
  "/root/repo/tests/test_vm_paging.cc" "tests/CMakeFiles/ptm_tests.dir/test_vm_paging.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_vm_paging.cc.o.d"
  "/root/repo/tests/test_vtm.cc" "tests/CMakeFiles/ptm_tests.dir/test_vtm.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_vtm.cc.o.d"
  "/root/repo/tests/test_word_granularity.cc" "tests/CMakeFiles/ptm_tests.dir/test_word_granularity.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_word_granularity.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ptm_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ptm_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ptm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
