file(REMOVE_RECURSE
  "CMakeFiles/ptm_tests.dir/test_cache_tlb.cc.o"
  "CMakeFiles/ptm_tests.dir/test_cache_tlb.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_coro_locks.cc.o"
  "CMakeFiles/ptm_tests.dir/test_coro_locks.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_misc_units.cc.o"
  "CMakeFiles/ptm_tests.dir/test_misc_units.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_moesi.cc.o"
  "CMakeFiles/ptm_tests.dir/test_moesi.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_ptm_structures.cc.o"
  "CMakeFiles/ptm_tests.dir/test_ptm_structures.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_random_tester.cc.o"
  "CMakeFiles/ptm_tests.dir/test_random_tester.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_sim_kernel.cc.o"
  "CMakeFiles/ptm_tests.dir/test_sim_kernel.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_tm_integration.cc.o"
  "CMakeFiles/ptm_tests.dir/test_tm_integration.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_tx_manager.cc.o"
  "CMakeFiles/ptm_tests.dir/test_tx_manager.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_vm_paging.cc.o"
  "CMakeFiles/ptm_tests.dir/test_vm_paging.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_vtm.cc.o"
  "CMakeFiles/ptm_tests.dir/test_vtm.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_word_granularity.cc.o"
  "CMakeFiles/ptm_tests.dir/test_word_granularity.cc.o.d"
  "CMakeFiles/ptm_tests.dir/test_workloads.cc.o"
  "CMakeFiles/ptm_tests.dir/test_workloads.cc.o.d"
  "ptm_tests"
  "ptm_tests.pdb"
  "ptm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
