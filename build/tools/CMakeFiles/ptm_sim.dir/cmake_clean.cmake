file(REMOVE_RECURSE
  "CMakeFiles/ptm_sim.dir/ptm_sim.cc.o"
  "CMakeFiles/ptm_sim.dir/ptm_sim.cc.o.d"
  "ptm_sim"
  "ptm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
