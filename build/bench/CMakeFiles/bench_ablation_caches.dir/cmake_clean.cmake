file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_caches.dir/bench_ablation_caches.cc.o"
  "CMakeFiles/bench_ablation_caches.dir/bench_ablation_caches.cc.o.d"
  "bench_ablation_caches"
  "bench_ablation_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
