file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctxsw.dir/bench_ablation_ctxsw.cc.o"
  "CMakeFiles/bench_ablation_ctxsw.dir/bench_ablation_ctxsw.cc.o.d"
  "bench_ablation_ctxsw"
  "bench_ablation_ctxsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctxsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
