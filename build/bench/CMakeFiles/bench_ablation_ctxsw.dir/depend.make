# Empty dependencies file for bench_ablation_ctxsw.
# This may be replaced when dependencies are built.
