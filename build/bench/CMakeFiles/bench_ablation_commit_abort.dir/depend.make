# Empty dependencies file for bench_ablation_commit_abort.
# This may be replaced when dependencies are built.
