file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_commit_abort.dir/bench_ablation_commit_abort.cc.o"
  "CMakeFiles/bench_ablation_commit_abort.dir/bench_ablation_commit_abort.cc.o.d"
  "bench_ablation_commit_abort"
  "bench_ablation_commit_abort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_commit_abort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
