# Empty dependencies file for bench_ablation_shadow_free.
# This may be replaced when dependencies are built.
