# Empty compiler generated dependencies file for example_ocean_overflow.
# This may be replaced when dependencies are built.
