file(REMOVE_RECURSE
  "CMakeFiles/example_ocean_overflow.dir/ocean_overflow.cpp.o"
  "CMakeFiles/example_ocean_overflow.dir/ocean_overflow.cpp.o.d"
  "example_ocean_overflow"
  "example_ocean_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ocean_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
