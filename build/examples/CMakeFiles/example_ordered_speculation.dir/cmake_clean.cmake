file(REMOVE_RECURSE
  "CMakeFiles/example_ordered_speculation.dir/ordered_speculation.cpp.o"
  "CMakeFiles/example_ordered_speculation.dir/ordered_speculation.cpp.o.d"
  "example_ordered_speculation"
  "example_ordered_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ordered_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
