# Empty dependencies file for example_ordered_speculation.
# This may be replaced when dependencies are built.
