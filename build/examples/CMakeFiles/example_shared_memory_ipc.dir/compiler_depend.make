# Empty compiler generated dependencies file for example_shared_memory_ipc.
# This may be replaced when dependencies are built.
