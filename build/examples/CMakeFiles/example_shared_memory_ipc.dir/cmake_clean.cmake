file(REMOVE_RECURSE
  "CMakeFiles/example_shared_memory_ipc.dir/shared_memory_ipc.cpp.o"
  "CMakeFiles/example_shared_memory_ipc.dir/shared_memory_ipc.cpp.o.d"
  "example_shared_memory_ipc"
  "example_shared_memory_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shared_memory_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
