file(REMOVE_RECURSE
  "libptm.a"
)
