# Empty dependencies file for ptm.
# This may be replaced when dependencies are built.
