
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/ptm.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/ptm.dir/cache/cache.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/ptm.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/ptm.dir/cpu/core.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/ptm.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/ptm.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/system.cc" "src/CMakeFiles/ptm.dir/harness/system.cc.o" "gcc" "src/CMakeFiles/ptm.dir/harness/system.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/ptm.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/ptm.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/ptm/vts.cc" "src/CMakeFiles/ptm.dir/ptm/vts.cc.o" "gcc" "src/CMakeFiles/ptm.dir/ptm/vts.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/ptm.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/ptm.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/ptm.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/ptm.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/ptm.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/ptm.dir/sim/stats.cc.o.d"
  "/root/repo/src/tx/tx_manager.cc" "src/CMakeFiles/ptm.dir/tx/tx_manager.cc.o" "gcc" "src/CMakeFiles/ptm.dir/tx/tx_manager.cc.o.d"
  "/root/repo/src/vm/os_kernel.cc" "src/CMakeFiles/ptm.dir/vm/os_kernel.cc.o" "gcc" "src/CMakeFiles/ptm.dir/vm/os_kernel.cc.o.d"
  "/root/repo/src/vtm/vtm.cc" "src/CMakeFiles/ptm.dir/vtm/vtm.cc.o" "gcc" "src/CMakeFiles/ptm.dir/vtm/vtm.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/ptm.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/ptm.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/lu.cc" "src/CMakeFiles/ptm.dir/workloads/lu.cc.o" "gcc" "src/CMakeFiles/ptm.dir/workloads/lu.cc.o.d"
  "/root/repo/src/workloads/ocean.cc" "src/CMakeFiles/ptm.dir/workloads/ocean.cc.o" "gcc" "src/CMakeFiles/ptm.dir/workloads/ocean.cc.o.d"
  "/root/repo/src/workloads/radix.cc" "src/CMakeFiles/ptm.dir/workloads/radix.cc.o" "gcc" "src/CMakeFiles/ptm.dir/workloads/radix.cc.o.d"
  "/root/repo/src/workloads/water.cc" "src/CMakeFiles/ptm.dir/workloads/water.cc.o" "gcc" "src/CMakeFiles/ptm.dir/workloads/water.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/ptm.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/ptm.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
