/**
 * @file
 * Ablation A: sensitivity to the VTS cache sizes.
 *
 * The paper provisions a 512-entry SPT cache and a 2048-entry TAV
 * cache in the memory controller (section 6.1). This sweep shrinks and
 * grows both together on the two overflow-heavy workloads; misses cost
 * structure walks in memory, so undersized caches should show up as
 * extra cycles on fft and ocean.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/report.hh"

int
main()
{
    using namespace ptm;

    struct Cfg
    {
        const char *label;
        unsigned spt, tav;
    };
    const Cfg cfgs[] = {
        {"1/16 size", 32, 128},
        {"1/4 size", 128, 512},
        {"paper (512/2048)", 512, 2048},
        {"4x size", 2048, 8192},
    };

    std::printf("Ablation A: SPT/TAV cache size sweep (Select-PTM)\n\n");
    Report table({"config", "app", "cycles", "spt hit%", "tav hit%",
                  "verified"});

    for (const char *app : {"fft", "ocean"}) {
        for (const Cfg &c : cfgs) {
            SystemParams prm;
            prm.tmKind = TmKind::SelectPtm;
            prm.sptCacheEntries = c.spt;
            prm.tavCacheEntries = c.tav;
            ExperimentResult r = runWorkload(app, prm, 1, 4);
            const RunStats &s = r.stats;
            double spt_total =
                double(s.sptCacheHits + s.sptCacheMisses);
            double tav_total =
                double(s.tavCacheHits + s.tavCacheMisses);
            table.row(
                {c.label, app, cellU(s.cycles == 0 ? r.cycles : s.cycles),
                 cell("%.1f%%", spt_total ? 100.0 * double(s.sptCacheHits) /
                                                spt_total
                                          : 0.0),
                 cell("%.1f%%", tav_total ? 100.0 * double(s.tavCacheHits) /
                                                tav_total
                                          : 0.0),
                 r.verified ? "yes" : "NO"});
        }
    }
    table.print();
    return 0;
}
