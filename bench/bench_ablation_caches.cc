/**
 * @file
 * Ablation A: sensitivity to the VTS cache sizes.
 *
 * The paper provisions a 512-entry SPT cache and a 2048-entry TAV
 * cache in the memory controller (section 6.1). This sweep shrinks and
 * grows both together on the two overflow-heavy workloads; misses cost
 * structure walks in memory, so undersized caches should show up as
 * extra cycles on fft and ocean.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    OptionTable opts("bench_ablation_caches",
                     "Sweep the VTS SPT/TAV cache sizes.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny test size, 1 = benchmark size", scale);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_ablation_caches: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_ablation_caches",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;

    // Machine-readable output on stdout moves the human tables and
    // inform() status lines to stderr so the stream stays parseable.
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    struct Cfg
    {
        const char *label;
        unsigned spt, tav;
    };
    const Cfg cfgs[] = {
        {"1/16 size", 32, 128},
        {"1/4 size", 128, 512},
        {"paper (512/2048)", 512, 2048},
        {"4x size", 2048, 8192},
    };

    std::fprintf(hout, "Ablation A: SPT/TAV cache size sweep (Select-PTM)\n\n");
    Report table({"config", "app", "cycles", "spt hit%", "tav hit%",
                  "verified"});
    BenchRecorder rec("ablation_caches");

    std::size_t violations = 0;
    for (const char *app : {"fft", "ocean"}) {
        for (const Cfg &c : cfgs) {
            SystemParams prm;
            prm.tmKind = TmKind::SelectPtm;
            prm.sptCacheEntries = c.spt;
            prm.tavCacheEntries = c.tav;
            prm.trace = trace;
            prm.profile = profile;
            prm.persist = persist;
            robust.applyTo(prm);
            machine.applyTo(prm);
            obs.applyTo(prm);
            ExperimentResult r = runWorkload(app, prm, scale, 4);
            violations += reportAuditViolations("bench_ablation_caches",
                                                app, prm, r);
            if (!trace.path.empty())
                captures.push_back(std::move(r.trace));
            printRunProfile(hout, std::string(app) + "/" + c.label,
                            r.profile, r.host);
            const StatSnapshot &s = r.snapshot;
            std::uint64_t spt_hits = s.counter("vts.spt_cache_hits");
            std::uint64_t tav_hits = s.counter("vts.tav_cache_hits");
            double spt_total = double(
                spt_hits + s.counter("vts.spt_cache_misses"));
            double tav_total = double(
                tav_hits + s.counter("vts.tav_cache_misses"));
            double spt_pct =
                spt_total ? 100.0 * double(spt_hits) / spt_total : 0.0;
            double tav_pct =
                tav_total ? 100.0 * double(tav_hits) / tav_total : 0.0;
            table.row({c.label, app, cellU(r.cycles),
                       cell("%.1f%%", spt_pct),
                       cell("%.1f%%", tav_pct),
                       r.verified ? "yes" : "NO"});
            rec.beginRow()
                .field("config", c.label)
                .field("app", app)
                .field("spt_entries", c.spt)
                .field("tav_entries", c.tav)
                .field("cycles", std::uint64_t(r.cycles))
                .field("spt_hit_pct", spt_pct)
                .field("tav_hit_pct", tav_pct)
                .field("verified", r.verified);
            addProfileFields(rec, r.profile);
        }
    }
    table.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr, "bench_ablation_caches: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_ablation_caches: %s\n",
                         err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }
    return violations == 0 ? 0 : 1;
}
