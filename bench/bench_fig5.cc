/**
 * @file
 * Reproduces Figure 5 of the paper: "Advantage of conflict detection
 * at the word granularity" — 4p locks vs Select-PTM with block-only,
 * wd:cache and wd:cache+mem conflict detection.
 *
 * Paper's qualitative result:
 *  - radix suffers badly from block-granularity false conflicts
 *    (scattered permutation writes interleave within blocks) and jumps
 *    from +116% to +170% with end-to-end word granularity;
 *  - wd:cache alone helps only a little, because evicting a block
 *    written by several transactions still aborts (the overflow
 *    structures track one writer per block);
 *  - most other programs are insensitive.
 *
 * The workload kernels at our scale do not evict multi-writer blocks,
 * so a microbenchmark ("mw-micro") demonstrates the wd:cache vs
 * wd:cache+mem distinction: transactions write disjoint words of
 * shared blocks under a tiny L2, forcing multi-writer evictions.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/system.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

namespace
{

using namespace ptm;

/** Multi-writer eviction microbenchmark: returns (cycles, aborts). */
std::pair<Tick, std::uint64_t>
mwMicro(Granularity g, int scale)
{
    SystemParams p;
    p.tmKind = TmKind::SelectPtm;
    p.granularity = g;
    p.l1Bytes = 512;
    p.l2Bytes = 4096; // tiny: force evictions mid-transaction
    p.l2Assoc = 2;
    p.daemonInterval = 0;
    p.osQuantum = 0;
    p.maxTicks = 500ull * 1000 * 1000;

    System sys(p);
    ProcId proc = sys.createProcess();
    constexpr unsigned kBlocks = 256;
    const unsigned kIters = scale ? 6 : 2;
    constexpr Addr base = 0x100000;
    // Each of 4 threads repeatedly writes ITS OWN word of every shared
    // block inside one large (overflowing) transaction.
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<Step> steps;
        for (unsigned i = 0; i < kIters; ++i) {
            TxStep s;
            s.body = [t](MemCtx m) -> TxCoro {
                for (unsigned b = 0; b < kBlocks; ++b)
                    co_await m.store(base + Addr(b) * blockBytes +
                                         4 * t,
                                     b * 16 + t);
            };
            steps.push_back(std::move(s));
        }
        sys.addThread(proc, std::move(steps));
    }
    sys.run();
    StatSnapshot s = sys.snapshot();
    return {Tick(s.value("sys.cycles")), s.counter("tx.aborts")};
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    OptionTable opts("bench_fig5",
                     "Reproduce Figure 5: conflict detection at word "
                     "granularity.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny test size, 1 = benchmark size", scale);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_fig5: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_fig5",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;

    // Machine-readable output on stdout moves the human tables and
    // inform() status lines to stderr so the stream stays parseable.
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    std::fprintf(hout, "Figure 5: conflict detection at word granularity "
                "(%% speedup over 1 thread)\n\n");

    Report table(
        {"app", "4p locks", "blk-only", "wd:cache", "wd:cache+mem"});
    BenchRecorder rec("fig5");

    const Granularity grans[] = {Granularity::Block,
                                 Granularity::WordCache,
                                 Granularity::WordCacheMem};

    bool all_ok = true;
    std::size_t violations = 0;
    for (const auto &name : workloadNames()) {
        SystemParams sp;
        sp.tmKind = TmKind::Serial;
        Tick serial = runWorkload(name, sp, scale, 4).cycles;

        SystemParams lp;
        lp.tmKind = TmKind::Locks;
        ExperimentResult locks = runWorkload(name, lp, scale, 4);
        all_ok = all_ok && locks.verified;

        std::vector<std::string> cells{
            name, cell("%+.0f%%", speedupPct(serial, locks.cycles))};
        rec.beginRow()
            .field("app", name)
            .field("mode", "locks")
            .field("cycles", std::uint64_t(locks.cycles))
            .field("speedup_pct", speedupPct(serial, locks.cycles))
            .field("verified", locks.verified);
        for (Granularity g : grans) {
            SystemParams prm;
            prm.tmKind = TmKind::SelectPtm;
            prm.granularity = g;
            prm.trace = trace;
            prm.profile = profile;
            prm.persist = persist;
            robust.applyTo(prm);
            machine.applyTo(prm);
            obs.applyTo(prm);
            ExperimentResult r = runWorkload(name, prm, scale, 4);
            violations +=
                reportAuditViolations("bench_fig5", name, prm, r);
            if (!trace.path.empty())
                captures.push_back(std::move(r.trace));
            printRunProfile(hout, name + "/" + granularityName(g),
                            r.profile, r.host);
            all_ok = all_ok && r.verified;
            std::uint64_t aborts = r.snapshot.counter("tx.aborts");
            cells.push_back(cell("%+.0f%%",
                                 speedupPct(serial, r.cycles)) +
                            " (a" + cellU(aborts) + ")" +
                            (r.verified ? "" : " !!WRONG"));
            rec.beginRow()
                .field("app", name)
                .field("mode", granularityName(g))
                .field("cycles", std::uint64_t(r.cycles))
                .field("speedup_pct", speedupPct(serial, r.cycles))
                .field("aborts", aborts)
                .field("verified", r.verified);
            addProfileFields(rec, r.profile);
        }
        table.row(std::move(cells));
    }
    table.print(hout);

    std::fprintf(hout, "\nmw-micro: disjoint-word writers of shared blocks "
                "with forced mid-transaction evictions\n\n");
    Report micro({"mode", "cycles", "aborts"});
    for (Granularity g : grans) {
        auto [cycles, aborts] = mwMicro(g, scale);
        micro.row({granularityName(g), cellU(cycles), cellU(aborts)});
        rec.beginRow()
            .field("app", "mw-micro")
            .field("mode", granularityName(g))
            .field("cycles", std::uint64_t(cycles))
            .field("aborts", aborts);
    }
    micro.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr, "bench_fig5: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_fig5: %s\n", err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }
    std::fprintf(hout, "\n(blk-only: every co-writer conflicts; wd:cache: no "
                "access conflicts but multi-writer evictions abort; "
                "wd:cache+mem: per-word vectors, no aborts.)\n");
    std::fprintf(hout, "Paper: radix +116%% (blk) -> +170%% (wd:cache+mem); "
                "wd:cache alone gives only minor gains.\n");
    std::fprintf(hout, "All results functionally verified: %s\n",
                all_ok ? "yes" : "NO");
    return (all_ok && violations == 0) ? 0 : 1;
}
