/**
 * @file
 * Reproduces Table 1 of the paper: "Transactional memory execution
 * behavior for loop regions in the SPLASH-2 programs".
 *
 * Columns: committed / aborted transactions, exceptions, context
 * switches, unique pages, pages written transactionally (pg-x-wr), the
 * conservative shadow-page bound (pg-x-wr / pages), the idealized
 * shadow-page overhead (time-averaged live speculative pages / pages),
 * and memory operations per cache-block eviction.
 *
 * The runs use the 4-thread Select-PTM system with the OS noise
 * enabled (timer quanta and daemon preemptions), matching the paper's
 * measurement setup. Absolute values differ from the paper (our
 * kernels are scaled-down re-creations, section "Substitutions" of
 * DESIGN.md); the per-benchmark *profile* — which programs commit or
 * abort a lot, which have the big footprints and the high eviction
 * rates — is the reproduced result, recorded in EXPERIMENTS.md.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/report.hh"

namespace
{

/** Paper values for side-by-side comparison. */
struct PaperRow
{
    const char *app;
    unsigned commit, abort, exc, ctx, pages, pgxwr;
    double conservative, ideal, mopPerEvict;
};

constexpr PaperRow kPaper[] = {
    {"fft", 34, 5, 595, 52, 1041, 551, 52.9, 9.5, 87.5},
    {"lu", 656, 0, 17754, 1079, 2311, 2130, 92.2, 3.6, 95.3},
    {"radix", 70, 17, 615, 116, 771, 629, 81.6, 2.0, 246.3},
    {"ocean", 877, 282, 7417, 1421, 14966, 6769, 45.2, 0.2, 15.8},
    {"water", 59, 8, 32, 127, 241, 110, 45.6, 2.6, 4926.3},
};

} // namespace

int
main()
{
    using namespace ptm;

    std::printf("Table 1: transactional execution behavior "
                "(4p Select-PTM, OS noise on)\n\n");

    Report table({"app", "commit", "abort", "exception", "ctx-switch",
                  "pages", "pg-x-wr", "conservative", "ideal",
                  "mop/evict"});

    for (const auto &name : workloadNames()) {
        SystemParams prm;
        prm.tmKind = TmKind::SelectPtm;
        ExperimentResult r = runWorkload(name, prm, 1, 4);
        const RunStats &s = r.stats;
        double mop = s.evictions ? s.mopPerEvict()
                                 : double(s.memOps); // no evictions
        table.row({name, cellU(s.commits), cellU(s.aborts),
                   cellU(s.exceptions), cellU(s.contextSwitches),
                   cellU(s.uniquePages), cellU(s.txWrittenPages),
                   cell("%.1f%%", s.conservativePct()),
                   cell("%.1f%%", s.idealPct()),
                   cell("%.1f", mop) +
                       (s.evictions ? "" : " (no evictions)") +
                       (r.verified ? "" : "  !!WRONG RESULT")});
    }
    table.print();

    std::printf("\nPaper's Table 1 (for shape comparison):\n\n");
    Report paper({"app", "commit", "abort", "exception", "ctx-switch",
                  "pages", "pg-x-wr", "conservative", "ideal",
                  "mop/evict"});
    for (const auto &p : kPaper) {
        paper.row({p.app, cellU(p.commit), cellU(p.abort), cellU(p.exc),
                   cellU(p.ctx), cellU(p.pages), cellU(p.pgxwr),
                   cell("%.1f%%", p.conservative),
                   cell("%.1f%%", p.ideal), cell("%.1f", p.mopPerEvict)});
    }
    paper.print();
    return 0;
}
