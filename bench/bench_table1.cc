/**
 * @file
 * Reproduces Table 1 of the paper: "Transactional memory execution
 * behavior for loop regions in the SPLASH-2 programs".
 *
 * Columns: committed / aborted transactions, exceptions, context
 * switches, unique pages, pages written transactionally (pg-x-wr), the
 * conservative shadow-page bound (pg-x-wr / pages), the idealized
 * shadow-page overhead (time-averaged live speculative pages / pages),
 * and memory operations per cache-block eviction.
 *
 * The runs use the 4-thread Select-PTM system with the OS noise
 * enabled (timer quanta and daemon preemptions), matching the paper's
 * measurement setup. Absolute values differ from the paper (our
 * kernels are scaled-down re-creations, section "Substitutions" of
 * DESIGN.md); the per-benchmark *profile* — which programs commit or
 * abort a lot, which have the big footprints and the high eviction
 * rates — is the reproduced result, recorded in EXPERIMENTS.md.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

namespace
{

/** Paper values for side-by-side comparison. */
struct PaperRow
{
    const char *app;
    unsigned commit, abort, exc, ctx, pages, pgxwr;
    double conservative, ideal, mopPerEvict;
};

constexpr PaperRow kPaper[] = {
    {"fft", 34, 5, 595, 52, 1041, 551, 52.9, 9.5, 87.5},
    {"lu", 656, 0, 17754, 1079, 2311, 2130, 92.2, 3.6, 95.3},
    {"radix", 70, 17, 615, 116, 771, 629, 81.6, 2.0, 246.3},
    {"ocean", 877, 282, 7417, 1421, 14966, 6769, 45.2, 0.2, 15.8},
    {"water", 59, 8, 32, 127, 241, 110, 45.6, 2.6, 4926.3},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    OptionTable opts("bench_table1",
                     "Reproduce Table 1: transactional execution "
                     "behavior of the SPLASH-2 loop regions.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny test size, 1 = benchmark size", scale);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_table1: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_table1",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;

    // Machine-readable output on stdout moves the human tables and
    // inform() status lines to stderr so the stream stays parseable.
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    std::fprintf(hout, "Table 1: transactional execution behavior "
                "(4p Select-PTM, OS noise on)\n\n");

    Report table({"app", "commit", "abort", "exception", "ctx-switch",
                  "pages", "pg-x-wr", "conservative", "ideal",
                  "mop/evict"});
    BenchRecorder rec("table1");

    std::size_t violations = 0;
    for (const auto &name : workloadNames()) {
        SystemParams prm;
        prm.tmKind = TmKind::SelectPtm;
        prm.trace = trace;
        prm.profile = profile;
        prm.persist = persist;
        robust.applyTo(prm);
        machine.applyTo(prm);
        obs.applyTo(prm);
        ExperimentResult r = runWorkload(name, prm, scale, 4);
        violations +=
            reportAuditViolations("bench_table1", name, prm, r);
        if (!trace.path.empty())
            captures.push_back(std::move(r.trace));
        printRunProfile(hout, name, r.profile, r.host);
        const StatSnapshot &s = r.snapshot;
        std::uint64_t evictions = s.counter("mem.evictions");
        double mop = evictions
                         ? s.value("sys.mop_per_evict")
                         : s.value("sys.mem_ops"); // no evictions
        table.row({name, cellU(s.counter("tx.commits")),
                   cellU(s.counter("tx.aborts")),
                   cellU(s.counter("os.exceptions")),
                   cellU(s.counter("os.context_switches")),
                   cellU(s.counter("os.pages")),
                   cellU(s.counter("os.pg_x_wr")),
                   cell("%.1f%%", s.value("sys.conservative_pct")),
                   cell("%.1f%%", s.value("sys.ideal_pct")),
                   cell("%.1f", mop) +
                       (evictions ? "" : " (no evictions)") +
                       (r.verified ? "" : "  !!WRONG RESULT")});
        rec.beginRow()
            .field("app", name)
            .field("cycles", std::uint64_t(r.cycles))
            .field("commits", s.counter("tx.commits"))
            .field("aborts", s.counter("tx.aborts"))
            .field("exceptions", s.counter("os.exceptions"))
            .field("context_switches",
                   s.counter("os.context_switches"))
            .field("pages", s.counter("os.pages"))
            .field("pg_x_wr", s.counter("os.pg_x_wr"))
            .field("conservative_pct",
                   s.value("sys.conservative_pct"))
            .field("ideal_pct", s.value("sys.ideal_pct"))
            .field("mop_per_evict", mop)
            .field("verified", r.verified);
        if (machine.hostMetrics)
            rec.field("sim_events_per_sec",
                      r.wallSeconds > 0
                          ? r.eventsExecuted / r.wallSeconds
                          : 0.0);
        addProfileFields(rec, r.profile);
    }
    table.print(hout);

    // Wide-machine scaling rows: the same transactional profile on
    // 16/32/64 cores (fft, the cheapest kernel), exercising the
    // banked interconnect and the per-core supervisor sharding.
    std::fprintf(hout, "\nCore scaling (fft, Select-PTM):\n\n");
    Report scaling({"cores", "commit", "abort", "cycles",
                    "ctx-switch", "ok"});
    for (unsigned cores : {16u, 32u, 64u}) {
        SystemParams prm;
        prm.tmKind = TmKind::SelectPtm;
        prm.numCores = cores;
        prm.trace = trace;
        prm.profile = profile;
        prm.persist = persist;
        robust.applyTo(prm);
        machine.applyTo(prm);
        obs.applyTo(prm);
        ExperimentResult r = runWorkload("fft", prm, scale, cores);
        violations +=
            reportAuditViolations("bench_table1", "fft", prm, r);
        if (!trace.path.empty())
            captures.push_back(std::move(r.trace));
        const StatSnapshot &s = r.snapshot;
        scaling.row({"c" + std::to_string(cores),
                     cellU(s.counter("tx.commits")),
                     cellU(s.counter("tx.aborts")),
                     cellU(std::uint64_t(r.cycles)),
                     cellU(s.counter("os.context_switches")),
                     r.verified ? "yes" : "NO"});
        rec.beginRow()
            .field("app", "fft")
            .field("config", "scale-c" + std::to_string(cores))
            .field("cores", cores)
            .field("cycles", std::uint64_t(r.cycles))
            .field("commits", s.counter("tx.commits"))
            .field("aborts", s.counter("tx.aborts"))
            .field("context_switches",
                   s.counter("os.context_switches"))
            .field("verified", r.verified);
        if (machine.hostMetrics)
            rec.field("sim_events_per_sec",
                      r.wallSeconds > 0
                          ? r.eventsExecuted / r.wallSeconds
                          : 0.0);
    }
    scaling.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr, "bench_table1: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_table1: %s\n", err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }

    std::fprintf(hout, "\nPaper's Table 1 (for shape comparison):\n\n");
    Report paper({"app", "commit", "abort", "exception", "ctx-switch",
                  "pages", "pg-x-wr", "conservative", "ideal",
                  "mop/evict"});
    for (const auto &p : kPaper) {
        paper.row({p.app, cellU(p.commit), cellU(p.abort), cellU(p.exc),
                   cellU(p.ctx), cellU(p.pages), cellU(p.pgxwr),
                   cell("%.1f%%", p.conservative),
                   cell("%.1f%%", p.ideal), cell("%.1f", p.mopPerEvict)});
    }
    paper.print(hout);
    return violations == 0 ? 0 : 1;
}
