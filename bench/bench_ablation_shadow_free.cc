/**
 * @file
 * Ablation C: Select-PTM shadow-page freeing policies (section 3.5.2).
 *
 * After commits, the committed blocks of a page may sit in the shadow
 * page, which therefore cannot be freed. The paper proposes two
 * reclamation policies:
 *
 *  - MergeOnSwap: merge the shadow's committed blocks into the home
 *    frame when the OS swaps the page out (exercises the Swap Index
 *    Table);
 *  - LazyMigrate: force non-speculative write-backs to the home page,
 *    toggling the selection bit, until the vector clears and the
 *    shadow frees.
 *
 * The microbenchmark dirties waves of pages transactionally under
 * memory pressure (small physical memory with swapping enabled), then
 * rewrites them non-transactionally, and reports shadow-page and swap
 * activity for both policies.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/system.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

namespace
{

using namespace ptm;

struct Result
{
    Tick cycles = 0;
    std::uint64_t shadowAllocs = 0;
    std::uint64_t shadowFrees = 0;
    std::uint64_t liveShadows = 0;
    std::uint64_t lazyMigrations = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t swapOuts = 0;
    bool ok = true;
    std::size_t auditViolations = 0;
    TraceCapture trace;
    ProfSnapshot profile;
    HostProfile host;
};

Result
run(ShadowFreePolicy policy, const TraceParams &trace,
    const ProfileParams &profile, const RobustnessParams &robust,
    const MachineParams &machine, const ObservabilityParams &obs,
    const PersistParams &persist, int scale)
{
    SystemParams p;
    p.tmKind = TmKind::SelectPtm;
    p.shadowFree = policy;
    p.trace = trace;
    p.profile = profile;
    robust.applyTo(p);
    machine.applyTo(p);
    obs.applyTo(p);
    if (p.tmKind != TmKind::Serial && p.tmKind != TmKind::Locks)
        p.persist = persist;
    p.swapEnabled = true;
    // Pressure: homes + shadows exceed the frame count at either size.
    p.physFrames = scale ? 360 : 90;
    p.l2Bytes = 16 * 1024;
    p.l2Assoc = 2;
    p.l1Bytes = 1024;
    p.daemonInterval = 0;
    p.osQuantum = 0;
    p.maxTicks = 2ull * 1000 * 1000 * 1000;

    System sys(p);
    ProcId proc = sys.createProcess();
    const unsigned kPages = scale ? 200 : 50;
    constexpr unsigned kWave = 25;
    constexpr Addr base = 0x1000000;

    std::vector<Step> steps;
    for (unsigned wave = 0; wave * kWave < kPages; ++wave) {
        unsigned p0 = wave * kWave;
        // A transaction dirtying one block on each page of the wave
        // (allocating a shadow page per page) and overflowing.
        TxStep tx;
        tx.body = [p0](MemCtx m) -> TxCoro {
            for (unsigned pg = p0; pg < p0 + kWave; ++pg)
                for (unsigned b = 0; b < blocksPerPage; b += 4)
                    co_await m.store(base + Addr(pg) * pageBytes +
                                         b * blockBytes,
                                     pg * 1000 + b);
        };
        steps.push_back(std::move(tx));
        // Non-transactional rewrites of the same pages: under
        // LazyMigrate each write-back migrates committed blocks home.
        steps.push_back(PlainStep{[p0](MemCtx m) -> TxCoro {
            for (unsigned pg = p0; pg < p0 + kWave; ++pg)
                for (unsigned b = 0; b < blocksPerPage; b += 4)
                    co_await m.store(base + Addr(pg) * pageBytes +
                                         b * blockBytes,
                                     pg * 1000 + b + 7);
        }});
    }
    // Final sweep touching everything (forces residency / swap-ins).
    steps.push_back(PlainStep{[kPages](MemCtx m) -> TxCoro {
        for (unsigned pg = 0; pg < kPages; ++pg)
            co_await m.load(base + Addr(pg) * pageBytes);
    }});
    sys.addThread(proc, std::move(steps), "waves");
    sys.run();

    Result r;
    StatSnapshot s = sys.snapshot();
    if (sys.tracer().active())
        r.trace = captureTrace(sys.tracer(),
                               std::string("shadow-free/") +
                                   (policy == ShadowFreePolicy::MergeOnSwap
                                        ? "merge-on-swap"
                                        : "lazy-migrate"));
    r.cycles = Tick(s.value("sys.cycles"));
    r.shadowAllocs = s.counter("vts.shadow_allocs");
    r.shadowFrees = s.counter("vts.shadow_frees");
    r.liveShadows = s.counter("vts.live_shadow_pages");
    r.lazyMigrations = s.counter("vts.lazy_migrations");
    r.swapIns = s.counter("os.swap_ins");
    r.swapOuts = s.counter("os.swap_outs");
    r.profile = sys.profiler().snapshot();
    r.host = sys.eq().hostProfile();
    for (unsigned pg = 0; pg < kPages && r.ok; ++pg)
        for (unsigned b = 0; b < blocksPerPage; b += 4)
            if (sys.readWord32(proc, base + Addr(pg) * pageBytes +
                                         b * blockBytes) !=
                pg * 1000 + b + 7)
                r.ok = false;
    ExperimentResult audited;
    audited.auditViolations = sys.auditor().violations();
    r.auditViolations = reportAuditViolations(
        "bench_ablation_shadow_free", "", p, audited);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    OptionTable opts("bench_ablation_shadow_free",
                     "Shadow-page freeing policies under memory "
                     "pressure.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny test size, 1 = benchmark size", scale);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_ablation_shadow_free: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_ablation_shadow_free",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;

    // Machine-readable output on stdout moves the human tables and
    // inform() status lines to stderr so the stream stays parseable.
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    std::fprintf(hout, "Ablation C: shadow-page freeing policies under "
                "memory pressure (Select-PTM, swap on)\n\n");
    Report table({"policy", "cycles", "shadow allocs", "shadow frees",
                  "live shadows at end", "lazy migrations", "swap-outs",
                  "swap-ins", "verified"});
    BenchRecorder rec("ablation_shadow_free");
    std::size_t violations = 0;
    for (ShadowFreePolicy pol :
         {ShadowFreePolicy::MergeOnSwap, ShadowFreePolicy::LazyMigrate}) {
        Result r = run(pol, trace, profile, robust, machine, obs,
                       persist,
                       scale);
        violations += r.auditViolations;
        if (!trace.path.empty())
            captures.push_back(std::move(r.trace));
        const char *label = pol == ShadowFreePolicy::MergeOnSwap
                                ? "merge-on-swap"
                                : "lazy-migrate";
        printRunProfile(hout, label, r.profile, r.host);
        table.row({label, cellU(r.cycles), cellU(r.shadowAllocs),
                   cellU(r.shadowFrees), cellU(r.liveShadows),
                   cellU(r.lazyMigrations), cellU(r.swapOuts),
                   cellU(r.swapIns), r.ok ? "yes" : "NO"});
        rec.beginRow()
            .field("policy", label)
            .field("cycles", std::uint64_t(r.cycles))
            .field("shadow_allocs", r.shadowAllocs)
            .field("shadow_frees", r.shadowFrees)
            .field("live_shadows", r.liveShadows)
            .field("lazy_migrations", r.lazyMigrations)
            .field("swap_outs", r.swapOuts)
            .field("swap_ins", r.swapIns)
            .field("verified", r.ok);
        addProfileFields(rec, r.profile);
    }
    table.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr,
                     "bench_ablation_shadow_free: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_ablation_shadow_free: %s\n",
                         err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }
    std::fprintf(hout, "\n(LazyMigrate reclaims shadows through ordinary "
                "write-backs; MergeOnSwap holds them until the OS "
                "pages the home out and merges into the SIT image.)\n");
    return violations == 0 ? 0 : 1;
}
