/**
 * @file
 * Reproduces Figure 4 of the paper: "% speedup over single-threaded
 * execution for lock-based multithreading, (base) VTM, Victim-Cache
 * VTM, Copy-PTM and Select-PTM", for fft / lu / radix / ocean / water
 * and the average.
 *
 * Paper's qualitative result to reproduce:
 *  - base VTM gets no/low speedup on fft and ocean (commit copy-back
 *    cost on the overflow-heavy programs) but decent speedup on the
 *    other three;
 *  - the victim cache recovers part of VTM's loss (avg +72% in the
 *    paper);
 *  - Copy-PTM (avg +116%) sits between VTM and Select-PTM because of
 *    its eviction-time backup copies and abort restores;
 *  - Select-PTM is the best TM system (avg +220%), competitive with or
 *    better than fine-grained locks (avg +134%).
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/report.hh"

int
main()
{
    using namespace ptm;

    const TmKind kinds[] = {TmKind::Locks, TmKind::Vtm, TmKind::VcVtm,
                            TmKind::CopyPtm, TmKind::SelectPtm};

    std::printf("Figure 4: %% speedup over single-threaded execution "
                "(4 cores)\n\n");
    Report table({"app", "4p locks", "VTM", "VC-VTM", "Copy-PTM",
                  "Sel-PTM"});

    double sums[5] = {};
    bool all_ok = true;
    for (const auto &name : workloadNames()) {
        SystemParams sp;
        sp.tmKind = TmKind::Serial;
        Tick serial = runWorkload(name, sp, 1, 4).cycles;

        std::vector<std::string> cells{name};
        for (unsigned k = 0; k < 5; ++k) {
            SystemParams prm;
            prm.tmKind = kinds[k];
            ExperimentResult r = runWorkload(name, prm, 1, 4);
            double pct = speedupPct(serial, r.cycles);
            sums[k] += pct;
            all_ok = all_ok && r.verified;
            cells.push_back(cell("%+.0f%%", pct) +
                            (r.verified ? "" : " !!WRONG"));
        }
        table.row(std::move(cells));
    }
    std::vector<std::string> avg{"Average"};
    for (double s : sums)
        avg.push_back(cell("%+.0f%%", s / 5.0));
    table.row(std::move(avg));
    table.print();

    std::printf("\nPaper's averages: locks +134%%, VC-VTM +72%%, "
                "Copy-PTM +116%%, Sel-PTM +220%%; base VTM ~0%% on "
                "fft/ocean.\n");
    std::printf("All results functionally verified: %s\n",
                all_ok ? "yes" : "NO");
    return all_ok ? 0 : 1;
}
