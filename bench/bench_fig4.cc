/**
 * @file
 * Reproduces Figure 4 of the paper: "% speedup over single-threaded
 * execution for lock-based multithreading, (base) VTM, Victim-Cache
 * VTM, Copy-PTM and Select-PTM", for fft / lu / radix / ocean / water
 * and the average.
 *
 * Paper's qualitative result to reproduce:
 *  - base VTM gets no/low speedup on fft and ocean (commit copy-back
 *    cost on the overflow-heavy programs) but decent speedup on the
 *    other three;
 *  - the victim cache recovers part of VTM's loss (avg +72% in the
 *    paper);
 *  - Copy-PTM (avg +116%) sits between VTM and Select-PTM because of
 *    its eviction-time backup copies and abort restores;
 *  - Select-PTM is the best TM system (avg +220%), competitive with or
 *    better than fine-grained locks (avg +134%).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    OptionTable opts("bench_fig4",
                     "Reproduce Figure 4: % speedup over "
                     "single-threaded execution.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny test size, 1 = benchmark size", scale);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_fig4: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_fig4",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;

    // Machine-readable output on stdout moves the human tables and
    // inform() status lines to stderr so the stream stays parseable.
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    const TmKind kinds[] = {TmKind::Locks, TmKind::Vtm, TmKind::VcVtm,
                            TmKind::CopyPtm, TmKind::SelectPtm};

    std::fprintf(hout, "Figure 4: %% speedup over single-threaded execution "
                "(4 cores)\n\n");
    Report table({"app", "4p locks", "VTM", "VC-VTM", "Copy-PTM",
                  "Sel-PTM"});
    BenchRecorder rec("fig4");

    double sums[5] = {};
    bool all_ok = true;
    std::size_t violations = 0;
    for (const auto &name : workloadNames()) {
        SystemParams sp;
        sp.tmKind = TmKind::Serial;
        Tick serial = runWorkload(name, sp, scale, 4).cycles;

        std::vector<std::string> cells{name};
        for (unsigned k = 0; k < 5; ++k) {
            SystemParams prm;
            prm.tmKind = kinds[k];
            prm.trace = trace;
            prm.profile = profile;
            // The persistence domain needs transactions to log; the
            // locks baseline stays volatile.
            if (prm.tmKind != TmKind::Locks)
                prm.persist = persist;
            robust.applyTo(prm);
            machine.applyTo(prm);
            obs.applyTo(prm);
            ExperimentResult r = runWorkload(name, prm, scale, 4);
            violations +=
                reportAuditViolations("bench_fig4", name, prm, r);
            if (!trace.path.empty())
                captures.push_back(std::move(r.trace));
            printRunProfile(hout,
                            name + "/" + tmKindName(kinds[k]),
                            r.profile, r.host);
            double pct = speedupPct(serial, r.cycles);
            sums[k] += pct;
            all_ok = all_ok && r.verified;
            cells.push_back(cell("%+.0f%%", pct) +
                            (r.verified ? "" : " !!WRONG"));
            rec.beginRow()
                .field("app", name)
                .field("system", tmKindName(kinds[k]))
                .field("serial_cycles", std::uint64_t(serial))
                .field("cycles", std::uint64_t(r.cycles))
                .field("speedup_pct", pct)
                .field("commits", r.snapshot.counter("tx.commits"))
                .field("aborts", r.snapshot.counter("tx.aborts"))
                .field("verified", r.verified);
            addProfileFields(rec, r.profile);
        }
        table.row(std::move(cells));
    }
    std::vector<std::string> avg{"Average"};
    for (unsigned k = 0; k < 5; ++k) {
        avg.push_back(cell("%+.0f%%", sums[k] / 5.0));
        rec.beginRow()
            .field("app", "average")
            .field("system", tmKindName(kinds[k]))
            .field("speedup_pct", sums[k] / 5.0);
    }
    table.row(std::move(avg));
    table.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr, "bench_fig4: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_fig4: %s\n", err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }

    std::fprintf(hout, "\nPaper's averages: locks +134%%, VC-VTM +72%%, "
                "Copy-PTM +116%%, Sel-PTM +220%%; base VTM ~0%% on "
                "fft/ocean.\n");
    std::fprintf(hout, "All results functionally verified: %s\n",
                all_ok ? "yes" : "NO");
    return (all_ok && violations == 0) ? 0 : 1;
}
