/**
 * @file
 * bench_kv — the serving-workload flagship bench: the transactional
 * B+-tree KV store on Select-PTM, swept over thread count and Zipfian
 * skew.
 *
 * Each configuration reports committed transactions per second (at
 * the nominal 1 GHz clock), the per-cause abort breakdown, and the
 * p50/p95/p99 end-to-end commit latency from the tx.commit_latency
 * distribution — the serving-style tail-latency view the SPLASH
 * throughput benches cannot give. The uniform (zipf 0) rows isolate
 * what skew costs: hot leaves concentrate conflicts and push the
 * latency tail out.
 *
 * With --scale 0 a reduced sweep runs on the tiny store (CI smoke);
 * --wl-opt passes extra kv options (e.g. --wl-opt tx-ops=8) into
 * every configuration of the sweep.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    WorkloadOptList wl_opts;
    OptionTable opts("bench_kv",
                     "KV serving workload: committed tx/sec, abort "
                     "causes and commit-latency percentiles on "
                     "Select-PTM across threads and Zipfian skew.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny store + reduced sweep, 1 = benchmark size",
                   scale);
    addWorkloadOptions(opts, wl_opts);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_kv: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_kv",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    // The wide-machine rows (16/32/64) exercise the banked
    // interconnect and the sharded supervisor at scale; the smoke
    // sweep keeps one mid and one max row so CI covers the wide
    // configurations without the full ladder.
    const std::vector<unsigned> thread_sweep =
        scale == 0 ? std::vector<unsigned>{2, 4, 16, 64}
                   : std::vector<unsigned>{1, 2, 4, 8, 16, 32, 64};
    const double zipf_sweep[] = {0.0, 0.99};

    std::fprintf(hout, "KV serving workload on Sel-PTM "
                       "(committed tx/sec at 1 GHz)\n\n");
    Report table({"config", "commits", "aborts", "abort%", "tx/Mcyc",
                  "steady tx/Mcyc", "p50", "p95", "p99", "SPT hit%",
                  "TAV hit%", "ok"});
    BenchRecorder rec("kv");

    bool all_ok = true;
    std::size_t violations = 0;
    for (unsigned threads : thread_sweep) {
        for (double zipf : zipf_sweep) {
            std::string zstr = zipf == 0.0 ? "0" : "0.99";
            std::string config =
                "t" + std::to_string(threads) + "-z" + zstr;

            SystemParams prm;
            prm.tmKind = TmKind::SelectPtm;
            prm.numCores = threads;
            prm.trace = trace;
            prm.profile = profile;
            prm.persist = persist;
            robust.applyTo(prm);
            machine.applyTo(prm);
            obs.applyTo(prm);
            // Always capture the time series internally: the sampler
            // is a pure read at the lowest event priority, so the
            // simulated results are bit-identical, and the last-half
            // commit deltas give the steady-state throughput row.
            prm.timeseries.capture = true;

            WorkloadOptList given;
            given.emplace_back("zipf", zstr);
            given.insert(given.end(), wl_opts.begin(), wl_opts.end());

            ExperimentResult r =
                runWorkload("kv", prm, scale, threads, given);
            violations +=
                reportAuditViolations("bench_kv", "kv", prm, r);
            if (!trace.path.empty())
                captures.push_back(std::move(r.trace));
            printRunProfile(hout, "kv/" + config, r.profile, r.host);
            all_ok = all_ok && r.verified;

            const StatSnapshot &s = r.snapshot;
            std::uint64_t commits = s.counter("tx.commits");
            std::uint64_t aborts = s.counter("tx.aborts");
            double attempts = double(commits + aborts);
            double abort_rate = attempts ? aborts / attempts : 0.0;
            double tx_per_mcycle =
                r.cycles ? commits / (double(r.cycles) / 1e6) : 0.0;
            // One tick is one cycle of the paper's 1 GHz CMP, so
            // tx/sec at the nominal clock is tx/cycle * 1e9.
            double tx_per_sec =
                r.cycles ? commits / (double(r.cycles) / 1e9) : 0.0;

            // Steady-state throughput: commit deltas over the run's
            // second half only, excluding the warm-up ramp (cold
            // caches, first-touch page faults, initial conflicts).
            std::uint64_t steady_commits = 0;
            Tick steady_span = 0;
            Tick half = Tick(r.cycles / 2);
            for (const auto &iv : r.timeseries.intervals) {
                if (iv.t0 < half || iv.t0 >= r.cycles)
                    continue;
                Tick t1 = std::min(Tick(iv.t1), Tick(r.cycles));
                steady_commits += r.timeseries.delta(iv, "tx.commits");
                steady_span += t1 - iv.t0;
            }
            double steady_tx_per_sec =
                steady_span
                    ? steady_commits / (double(steady_span) / 1e9)
                    : tx_per_sec;

            const StatValue *lat = s.find("tx.commit_latency");
            double p50 = lat ? lat->dist.percentile(50) : 0.0;
            double p95 = lat ? lat->dist.percentile(95) : 0.0;
            double p99 = lat ? lat->dist.percentile(99) : 0.0;

            std::uint64_t spt_h = s.counter("vts.spt_cache_hits");
            std::uint64_t spt_m = s.counter("vts.spt_cache_misses");
            std::uint64_t tav_h = s.counter("vts.tav_cache_hits");
            std::uint64_t tav_m = s.counter("vts.tav_cache_misses");
            double spt_rate =
                spt_h + spt_m ? double(spt_h) / double(spt_h + spt_m)
                              : 0.0;
            double tav_rate =
                tav_h + tav_m ? double(tav_h) / double(tav_h + tav_m)
                              : 0.0;

            table.row({config, cellU(commits), cellU(aborts),
                       cell("%.1f%%", abort_rate * 100.0),
                       cell("%.1f", tx_per_mcycle),
                       cell("%.1f", steady_tx_per_sec / 1e3),
                       cell("%.0f", p50), cell("%.0f", p95),
                       cell("%.0f", p99),
                       cell("%.1f%%", spt_rate * 100.0),
                       cell("%.1f%%", tav_rate * 100.0),
                       r.verified ? "yes" : "NO"});

            rec.beginRow()
                .field("app", "kv")
                .field("system", tmKindName(prm.tmKind))
                .field("config", config)
                .field("threads", threads)
                .field("zipf", zipf)
                .field("cycles", std::uint64_t(r.cycles))
                .field("commits", commits)
                .field("aborts", aborts)
                .field("aborts_conflict",
                       s.counter("tx.aborts_conflict"))
                .field("aborts_nontx", s.counter("tx.aborts_nontx"))
                .field("aborts_multiwriter",
                       s.counter("tx.aborts_multiwriter"))
                .field("aborts_explicit",
                       s.counter("tx.aborts_explicit"))
                .field("tx_per_mcycle", tx_per_mcycle)
                .field("tx_per_sec_1ghz", tx_per_sec)
                .field("steady_tx_per_sec_1ghz", steady_tx_per_sec)
                .field("abort_rate", abort_rate)
                .field("p50_commit_latency", p50)
                .field("p95_commit_latency", p95)
                .field("p99_commit_latency", p99)
                .field("spt_cache_hits", spt_h)
                .field("spt_cache_misses", spt_m)
                .field("tav_cache_hits", tav_h)
                .field("tav_cache_misses", tav_m)
                .field("spt_hit_rate", spt_rate)
                .field("tav_hit_rate", tav_rate)
                .field("verified", r.verified);
            // Durable-commit metrics exist only under --durability
            // wal, so volatile baseline rows are byte-identical and
            // bench_compare gates the new fields only when both runs
            // carried them.
            if (persist.enabled()) {
                const StatValue *pw =
                    s.find("persist.commit_persist_wait");
                rec.field("commits_persisted",
                          s.counter("persist.commits_persisted"))
                    .field("wal_log_bytes",
                           s.counter("persist.log_bytes"))
                    .field("wal_stall_ticks",
                           s.counter("persist.flush_stall_ticks"))
                    .field("p50_durable_commit_latency",
                           pw ? pw->dist.percentile(50) : 0.0)
                    .field("p99_durable_commit_latency",
                           pw ? pw->dist.percentile(99) : 0.0);
            }
            // Host throughput is machine-dependent: emitted only on
            // request so checked-in baselines compare across hosts.
            if (machine.hostMetrics)
                rec.field("sim_events_per_sec",
                          r.wallSeconds > 0
                              ? r.eventsExecuted / r.wallSeconds
                              : 0.0);
            addProfileFields(rec, r.profile);
        }
    }
    table.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr, "bench_kv: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_kv: %s\n", err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }

    std::fprintf(hout, "\nLatencies are end-to-end commit ticks "
                       "(first begin to commit, retries included).\n");
    std::fprintf(hout, "All results functionally verified: %s\n",
                 all_ok ? "yes" : "NO");
    return (all_ok && violations == 0) ? 0 : 1;
}
