/**
 * @file
 * Ablation B: commit vs abort cost of the versioning policies.
 *
 * A worker thread runs transactions that overflow the (shrunk) caches;
 * a saboteur thread injects non-transactional conflicting writes into
 * a controllable fraction of them, forcing aborts. This isolates the
 * core design trade-off of the paper:
 *
 *  - VTM buffers new values and copies them back at commit: cheap
 *    aborts, expensive commits (plus stalls on uncopied blocks);
 *  - Copy-PTM stores speculation in place: cheap commits, but aborts
 *    must restore every overwritten block from the shadow page;
 *  - Select-PTM toggles selection bits: cheap both ways.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/system.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

namespace
{

using namespace ptm;

struct Result
{
    Tick cycles = 0;
    std::uint64_t aborts = 0;
    std::uint64_t copyBackups = 0;
    std::uint64_t abortRestores = 0;
    std::uint64_t copybacks = 0;
    std::uint64_t stalls = 0;
    bool ok = false;
    std::size_t auditViolations = 0;
    TraceCapture trace;
    ProfSnapshot profile;
    HostProfile host;
};

/**
 * @param kind        TM system under test
 * @param abort_every sabotage every n-th transaction (0 = never)
 * @param trace       event-tracing parameters (off if path empty)
 * @param profile     cycle/host profiling parameters
 * @param scale       0 = tiny test size, 1 = benchmark size
 */
Result
run(TmKind kind, unsigned abort_every, const TraceParams &trace,
    const ProfileParams &profile, const RobustnessParams &robust,
    const MachineParams &machine, const ObservabilityParams &obs,
    const PersistParams &persist, int scale)
{
    SystemParams p;
    p.tmKind = kind;
    p.trace = trace;
    p.profile = profile;
    robust.applyTo(p);
    machine.applyTo(p);
    obs.applyTo(p);
    if (p.tmKind != TmKind::Serial && p.tmKind != TmKind::Locks)
        p.persist = persist;
    p.l1Bytes = 1024;
    p.l2Bytes = 8 * 1024; // 128 lines: transactions overflow
    p.l2Assoc = 2;
    p.daemonInterval = 0;
    p.osQuantum = 0;
    p.maxTicks = 2ull * 1000 * 1000 * 1000;

    System sys(p);
    ProcId proc = sys.createProcess();
    const unsigned kRounds = scale ? 40 : 8;
    constexpr unsigned kBlocks = 400;
    constexpr Addr data = 0x100000;
    constexpr Addr round_flag = 0x10000;

    // Worker: per round, announce the round (non-tx), then run one
    // overflowing transaction. In sabotage rounds the first attempt
    // lingers so the saboteur's write lands mid-transaction.
    auto attempt = std::make_shared<unsigned>(0);
    std::vector<Step> wsteps;
    for (unsigned r = 0; r < kRounds; ++r) {
        bool sabotage = abort_every && (r % abort_every) == 0;
        wsteps.push_back(PlainStep{[r](MemCtx m) -> TxCoro {
            co_await m.store(round_flag, r + 1);
        }});
        TxStep tx;
        tx.body = [attempt, sabotage, r](MemCtx m) -> TxCoro {
            unsigned a = ++*attempt;
            for (unsigned b = 0; b < kBlocks; ++b)
                co_await m.store(data + Addr(b) * blockBytes,
                                 r * kBlocks + b);
            if (sabotage && a == 1) {
                // Linger long enough that the saboteur's write lands
                // after the whole write set has overflowed.
                for (int i = 0; i < 600; ++i)
                    co_await m.compute(400);
            }
        };
        wsteps.push_back(std::move(tx));
    }
    sys.addThread(proc, std::move(wsteps), "worker");

    // Saboteur: on sabotage rounds, wait for the announcement and
    // stomp on the first data block non-transactionally.
    std::vector<Step> ssteps;
    ssteps.push_back(PlainStep{[abort_every, kRounds](MemCtx m) -> TxCoro {
        for (unsigned r = 0; r < kRounds; ++r) {
            bool sabotage = abort_every && (r % abort_every) == 0;
            while (co_await m.load(round_flag) < r + 1)
                co_await m.compute(500);
            if (sabotage) {
                // Wait out the worker's ~90K-cycle write phase first.
                co_await m.compute(120 * 1000);
                co_await m.store(data, 0xdead0000 + r);
            }
        }
    }});
    sys.addThread(proc, std::move(ssteps), "saboteur");

    sys.run();
    StatSnapshot s = sys.snapshot();
    Result res;
    if (sys.tracer().active())
        res.trace = captureTrace(sys.tracer(),
                                 std::string("commit-abort/") +
                                     tmKindName(kind));
    res.cycles = Tick(s.value("sys.cycles"));
    res.aborts = s.counter("tx.aborts");
    res.copyBackups = s.counter("vts.copy_backups");
    res.abortRestores = s.counter("vts.abort_restore_units");
    res.copybacks = s.counter("vtm.copybacks");
    res.stalls = s.counter("mem.false_stalls");
    res.profile = sys.profiler().snapshot();
    res.host = sys.eq().hostProfile();
    // Verify: the final committed value of every block belongs to the
    // last round (the worker re-runs sabotaged transactions).
    res.ok = true;
    for (unsigned b = 0; b < kBlocks; ++b) {
        std::uint32_t v =
            sys.readWord32(proc, data + Addr(b) * blockBytes);
        if (v != (kRounds - 1) * kBlocks + b)
            res.ok = false;
    }
    ExperimentResult audited;
    audited.auditViolations = sys.auditor().violations();
    res.auditViolations = reportAuditViolations(
        "bench_ablation_commit_abort", "", p, audited);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    OptionTable opts("bench_ablation_commit_abort",
                     "Commit vs abort cost of the versioning "
                     "policies.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny test size, 1 = benchmark size", scale);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_ablation_commit_abort: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_ablation_commit_abort",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;

    // Machine-readable output on stdout moves the human tables and
    // inform() status lines to stderr so the stream stays parseable.
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    std::fprintf(hout, "Ablation B: commit/abort cost of the versioning "
                "policies (overflowing transactions)\n\n");
    Report table({"system", "abort rate", "cycles", "aborts",
                  "copy backups", "abort restores", "VTM copybacks",
                  "stalls", "verified"});
    BenchRecorder rec("ablation_commit_abort");

    const TmKind kinds[] = {TmKind::SelectPtm, TmKind::CopyPtm,
                            TmKind::Vtm, TmKind::VcVtm};
    std::size_t violations = 0;
    for (unsigned every : {0u, 4u, 2u}) {
        for (TmKind k : kinds) {
            Result r = run(k, every, trace, profile, robust, machine,
                           obs, persist, scale);
            violations += r.auditViolations;
            if (!trace.path.empty())
                captures.push_back(std::move(r.trace));
            const char *rate = every == 0 ? "none"
                               : every == 4 ? "1 in 4"
                                            : "1 in 2";
            printRunProfile(hout,
                            std::string(tmKindName(k)) + "/" + rate,
                            r.profile, r.host);
            table.row({tmKindName(k), rate, cellU(r.cycles),
                       cellU(r.aborts), cellU(r.copyBackups),
                       cellU(r.abortRestores), cellU(r.copybacks),
                       cellU(r.stalls), r.ok ? "yes" : "NO"});
            rec.beginRow()
                .field("system", tmKindName(k))
                .field("abort_rate", rate)
                .field("cycles", std::uint64_t(r.cycles))
                .field("aborts", r.aborts)
                .field("copy_backups", r.copyBackups)
                .field("abort_restores", r.abortRestores)
                .field("vtm_copybacks", r.copybacks)
                .field("stalls", r.stalls)
                .field("verified", r.ok);
            addProfileFields(rec, r.profile);
        }
    }
    table.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr,
                     "bench_ablation_commit_abort: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_ablation_commit_abort: %s\n",
                         err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }
    std::fprintf(hout, "\n(Expected: Select-PTM cheap everywhere; Copy-PTM "
                "pays abort restores; VTM pays commit copybacks and "
                "stalls; the victim cache hides part of them.)\n");
    return violations == 0 ? 0 : 1;
}
