/**
 * @file
 * Ablation D: context-switch handling.
 *
 * PTM tags cache lines with transaction IDs, so a transaction's cached
 * state survives a context switch (section 4.7). VTM instead requires
 * the blocks touched by the departing transaction to be evicted and
 * invalidated. This ablation runs an oversubscribed system (8 threads
 * on 4 cores, aggressive quantum) with and without flush-on-switch.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/report.hh"

int
main()
{
    using namespace ptm;

    std::printf("Ablation D: context switches — PTM tx-ID tags vs "
                "flush-on-switch (8 threads / 4 cores)\n\n");
    Report table({"app", "mode", "cycles", "ctx-switches",
                  "tx evictions", "verified"});

    for (const char *app : {"lu", "water"}) {
        for (bool flush : {false, true}) {
            SystemParams prm;
            prm.tmKind = TmKind::SelectPtm;
            prm.osQuantum = 20 * 1000;
            prm.daemonInterval = 300 * 1000;
            prm.flushOnContextSwitch = flush;
            ExperimentResult r = runWorkload(app, prm, 1, 8);
            table.row({app,
                       flush ? "flush-on-switch" : "tx-ID tags (PTM)",
                       cellU(r.cycles), cellU(r.stats.contextSwitches),
                       cellU(r.stats.txEvictions),
                       r.verified ? "yes" : "NO"});
        }
    }
    table.print();
    std::printf("\n(Flushing forces overflow handling on every switch "
                "inside a transaction; PTM's tagged lines avoid it.)\n");
    return 0;
}
