/**
 * @file
 * Ablation D: context-switch handling.
 *
 * PTM tags cache lines with transaction IDs, so a transaction's cached
 * state survives a context switch (section 4.7). VTM instead requires
 * the blocks touched by the departing transaction to be evicted and
 * invalidated. This ablation runs an oversubscribed system (8 threads
 * on 4 cores, aggressive quantum) with and without flush-on-switch.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/profile_io.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"
#include "harness/trace_io.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string json_path;
    TraceParams trace;
    ProfileParams profile;
    int scale = 1;
    OptionTable opts("bench_ablation_ctxsw",
                     "Context-switch handling: PTM tx-ID tags vs "
                     "flush-on-switch.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    opts.optionInt("scale", "N",
                   "0 = tiny test size, 1 = benchmark size", scale);
    addTraceOptions(opts, trace);
    addProfileOptions(opts, profile);
    RobustnessParams robust;
    addRobustnessOptions(opts, robust);
    MachineParams machine;
    addMachineOptions(opts, machine);
    ObservabilityParams obs;
    addObservabilityOptions(opts, obs);
    addForensicsOptions(opts, obs.forensics);
    PersistParams persist;
    addPersistOptions(opts, persist);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // Crash dumps are single-run artifacts; a sweep would overwrite
    // one per configuration. Durable-commit policy knobs still apply.
    if (!persist.walPath.empty() || persist.crashAtTick) {
        std::fprintf(stderr,
                     "bench_ablation_ctxsw: --wal-file / --crash-at-tick are "
                     "single-run options; use ptm_sim\n");
        return 2;
    }

    if (!checkOutputSinks("bench_ablation_ctxsw",
                          {{"--json", json_path},
                           {"--trace", trace.path},
                           {"--timeseries", obs.timeseries.path},
                           {"--postmortem",
                            obs.forensics.postmortemPath}}))
        return 2;

    // Machine-readable output on stdout moves the human tables and
    // inform() status lines to stderr so the stream stays parseable.
    bool machine_stdout = json_path == "-" || trace.path == "-";
    if (machine_stdout)
        setInformToStderr(true);
    std::FILE *hout = machine_stdout ? stderr : stdout;
    std::vector<TraceCapture> captures;

    std::fprintf(hout, "Ablation D: context switches — PTM tx-ID tags vs "
                "flush-on-switch (8 threads / 4 cores)\n\n");
    Report table({"app", "mode", "cycles", "ctx-switches",
                  "tx evictions", "flush aborts", "verified"});
    BenchRecorder rec("ablation_ctxsw");

    std::size_t violations = 0;
    for (const char *app : {"lu", "water"}) {
        for (bool flush : {false, true}) {
            SystemParams prm;
            prm.tmKind = TmKind::SelectPtm;
            prm.osQuantum = 20 * 1000;
            prm.daemonInterval = 300 * 1000;
            prm.flushOnContextSwitch = flush;
            prm.trace = trace;
            prm.profile = profile;
            prm.persist = persist;
            robust.applyTo(prm);
            machine.applyTo(prm);
            obs.applyTo(prm);
            ExperimentResult r = runWorkload(app, prm, scale, 8);
            violations += reportAuditViolations("bench_ablation_ctxsw",
                                                app, prm, r);
            if (!trace.path.empty())
                captures.push_back(std::move(r.trace));
            const char *mode =
                flush ? "flush-on-switch" : "tx-ID tags (PTM)";
            printRunProfile(hout, std::string(app) + "/" + mode,
                            r.profile, r.host);
            auto row = rowFromStats(
                {app, mode, cellU(r.cycles)}, r.snapshot,
                {"os.context_switches", "mem.tx_evictions",
                 "mem.ctxsw_flush_aborts"});
            row.push_back(r.verified ? "yes" : "NO");
            table.row(std::move(row));
            rec.beginRow()
                .field("app", app)
                .field("mode", mode)
                .field("cycles", std::uint64_t(r.cycles))
                .field("context_switches",
                       r.snapshot.counter("os.context_switches"))
                .field("tx_evictions",
                       r.snapshot.counter("mem.tx_evictions"))
                .field("ctxsw_flush_aborts",
                       r.snapshot.counter("mem.ctxsw_flush_aborts"))
                .field("verified", r.verified);
            addProfileFields(rec, r.profile);
        }
    }
    table.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr, "bench_ablation_ctxsw: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }

    if (!trace.path.empty()) {
        std::string err;
        if (!writeTrace(trace.path, trace.format, captures, &err)) {
            std::fprintf(stderr, "bench_ablation_ctxsw: %s\n",
                         err.c_str());
            return 2;
        }
        inform("trace written to %s (%zu captures)",
               trace.path.c_str(), captures.size());
    }
    std::fprintf(hout, "\n(Flushing forces overflow handling on every switch "
                "inside a transaction; PTM's tagged lines avoid it.)\n");
    return violations == 0 ? 0 : 1;
}
