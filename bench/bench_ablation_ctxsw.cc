/**
 * @file
 * Ablation D: context-switch handling.
 *
 * PTM tags cache lines with transaction IDs, so a transaction's cached
 * state survives a context switch (section 4.7). VTM instead requires
 * the blocks touched by the departing transaction to be evicted and
 * invalidated. This ablation runs an oversubscribed system (8 threads
 * on 4 cores, aggressive quantum) with and without flush-on-switch.
 */

#include <cstdio>
#include <string>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/stats_io.hh"

int
main(int argc, char **argv)
{
    using namespace ptm;

    std::string json_path;
    OptionTable opts("bench_ablation_ctxsw",
                     "Context-switch handling: PTM tx-ID tags vs "
                     "flush-on-switch.");
    opts.optionString("json", "FILE",
                      "write ptm-bench-v1 results to FILE (- = stdout)",
                      json_path);
    switch (opts.parse(argc, argv)) {
      case CliStatus::Ok:
        break;
      case CliStatus::Exit:
        return 0;
      case CliStatus::Error:
        return 2;
    }

    // JSON on stdout moves the human tables to stderr so the JSON
    // stream stays parseable.
    std::FILE *hout = json_path == "-" ? stderr : stdout;

    std::fprintf(hout, "Ablation D: context switches — PTM tx-ID tags vs "
                "flush-on-switch (8 threads / 4 cores)\n\n");
    Report table({"app", "mode", "cycles", "ctx-switches",
                  "tx evictions", "flush aborts", "verified"});
    BenchRecorder rec("ablation_ctxsw");

    for (const char *app : {"lu", "water"}) {
        for (bool flush : {false, true}) {
            SystemParams prm;
            prm.tmKind = TmKind::SelectPtm;
            prm.osQuantum = 20 * 1000;
            prm.daemonInterval = 300 * 1000;
            prm.flushOnContextSwitch = flush;
            ExperimentResult r = runWorkload(app, prm, 1, 8);
            const char *mode =
                flush ? "flush-on-switch" : "tx-ID tags (PTM)";
            auto row = rowFromStats(
                {app, mode, cellU(r.cycles)}, r.snapshot,
                {"os.context_switches", "mem.tx_evictions",
                 "mem.ctxsw_flush_aborts"});
            row.push_back(r.verified ? "yes" : "NO");
            table.row(std::move(row));
            rec.beginRow()
                .field("app", app)
                .field("mode", mode)
                .field("cycles", std::uint64_t(r.cycles))
                .field("context_switches",
                       r.snapshot.counter("os.context_switches"))
                .field("tx_evictions",
                       r.snapshot.counter("mem.tx_evictions"))
                .field("ctxsw_flush_aborts",
                       r.snapshot.counter("mem.ctxsw_flush_aborts"))
                .field("verified", r.verified);
        }
    }
    table.print(hout);

    if (!rec.writeJson(json_path)) {
        std::fprintf(stderr, "bench_ablation_ctxsw: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }
    std::fprintf(hout, "\n(Flushing forces overflow handling on every switch "
                "inside a transaction; PTM's tagged lines avoid it.)\n");
    return 0;
}
